#include "subseq/distance/weighted_edit.h"

#include <gtest/gtest.h>

#include <string_view>
#include <vector>

#include "subseq/core/rng.h"
#include "subseq/distance/consistency.h"
#include "subseq/distance/levenshtein.h"

namespace subseq {
namespace {

std::vector<char> Str(std::string_view s) {
  return std::vector<char>(s.begin(), s.end());
}

TEST(SubstitutionCostModelTest, UnitCostsMatchLevenshtein) {
  const WeightedEditDistance weighted(
      SubstitutionCostModel::UnitCosts("ACGT"));
  const LevenshteinDistance<char> lev;
  Rng rng(7);
  const std::string_view alphabet = "ACGT";
  for (int trial = 0; trial < 30; ++trial) {
    std::vector<char> a;
    std::vector<char> b;
    const int na = static_cast<int>(rng.NextBounded(10));
    const int nb = static_cast<int>(rng.NextBounded(10));
    for (int i = 0; i < na; ++i) a.push_back(alphabet[rng.NextBounded(4)]);
    for (int i = 0; i < nb; ++i) b.push_back(alphabet[rng.NextBounded(4)]);
    EXPECT_DOUBLE_EQ(weighted.Compute(a, b), lev.Compute(a, b));
  }
}

TEST(SubstitutionCostModelTest, RejectsAsymmetricMatrix) {
  std::vector<double> sub = {0.0, 1.0,  //
                             2.0, 0.0};
  EXPECT_EQ(SubstitutionCostModel::Create("AB", std::move(sub), {1.0, 1.0})
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

TEST(SubstitutionCostModelTest, RejectsNonZeroDiagonal) {
  std::vector<double> sub = {0.5, 1.0,  //
                             1.0, 0.0};
  EXPECT_FALSE(
      SubstitutionCostModel::Create("AB", std::move(sub), {1.0, 1.0}).ok());
}

TEST(SubstitutionCostModelTest, RejectsTriangleViolation) {
  // sub(A,C) = 5 > sub(A,B) + sub(B,C) = 2.
  std::vector<double> sub = {0.0, 1.0, 5.0,  //
                             1.0, 0.0, 1.0,  //
                             5.0, 1.0, 0.0};
  EXPECT_FALSE(SubstitutionCostModel::Create("ABC", std::move(sub),
                                             {1.0, 1.0, 1.0})
                   .ok());
}

TEST(SubstitutionCostModelTest, RejectsSubstitutionAboveTwoGaps) {
  // sub(A,B) = 3 > gap(A) + gap(B) = 2: delete+insert would be cheaper,
  // and the extended cost function would not be a metric.
  std::vector<double> sub = {0.0, 3.0,  //
                             3.0, 0.0};
  EXPECT_FALSE(
      SubstitutionCostModel::Create("AB", std::move(sub), {1.0, 1.0}).ok());
}

TEST(SubstitutionCostModelTest, ProteinClassesIsValid) {
  const SubstitutionCostModel model = SubstitutionCostModel::ProteinClasses();
  EXPECT_EQ(model.alphabet().size(), 20u);
  // Within-group cheaper than across-group.
  EXPECT_DOUBLE_EQ(model.Substitution('L', 'I'), 0.5);  // both hydrophobic
  EXPECT_DOUBLE_EQ(model.Substitution('L', 'D'), 1.0);
  EXPECT_DOUBLE_EQ(model.Substitution('K', 'K'), 0.0);
}

TEST(WeightedEditTest, ConservativeSubstitutionIsCheaper) {
  const WeightedEditDistance d(SubstitutionCostModel::ProteinClasses());
  // L->I (same group) vs L->D (different group).
  EXPECT_LT(d.Compute(Str("MLK"), Str("MIK")),
            d.Compute(Str("MLK"), Str("MDK")));
}

TEST(WeightedEditTest, MetricAxiomsOnRandomProteins) {
  const WeightedEditDistance d(SubstitutionCostModel::ProteinClasses());
  Rng rng(13);
  const std::string_view alphabet = "ACDEFGHIKLMNPQRSTVWY";
  std::vector<std::vector<char>> samples;
  for (int i = 0; i < 10; ++i) {
    std::vector<char> s;
    const int n = 2 + static_cast<int>(rng.NextBounded(6));
    for (int j = 0; j < n; ++j) {
      s.push_back(alphabet[rng.NextBounded(alphabet.size())]);
    }
    samples.push_back(std::move(s));
  }
  const auto violation = CheckMetricAxioms(d, samples);
  EXPECT_FALSE(violation.has_value()) << *violation;
}

TEST(WeightedEditTest, ConsistencyOnRandomProteins) {
  const WeightedEditDistance d(SubstitutionCostModel::ProteinClasses());
  Rng rng(17);
  const std::string_view alphabet = "ACDEFGHIKL";
  for (int trial = 0; trial < 4; ++trial) {
    std::vector<char> q;
    std::vector<char> x;
    for (int i = 0; i < 6; ++i) {
      q.push_back(alphabet[rng.NextBounded(alphabet.size())]);
      x.push_back(alphabet[rng.NextBounded(alphabet.size())]);
    }
    const auto violation = FindConsistencyViolation<char>(d, q, x, 1);
    EXPECT_FALSE(violation.has_value());
  }
}

TEST(WeightedEditTest, BoundedAgreesWithExact) {
  const WeightedEditDistance d(SubstitutionCostModel::ProteinClasses());
  const auto a = Str("MKTAYIAK");
  const auto b = Str("MKTWYIGK");
  const double exact = d.Compute(a, b);
  EXPECT_DOUBLE_EQ(d.ComputeBounded(a, b, exact), exact);
  EXPECT_GT(d.ComputeBounded(a, b, exact / 2.0 - 1e-9), exact / 2.0 - 1e-9);
}

TEST(WeightedEditTest, PathCostMatchesDistance) {
  const WeightedEditDistance d(SubstitutionCostModel::ProteinClasses());
  Rng rng(19);
  const std::string_view alphabet = "ACDEFGHIKLMNPQRSTVWY";
  for (int trial = 0; trial < 15; ++trial) {
    std::vector<char> a;
    std::vector<char> b;
    const int na = 1 + static_cast<int>(rng.NextBounded(8));
    const int nb = 1 + static_cast<int>(rng.NextBounded(8));
    for (int i = 0; i < na; ++i) {
      a.push_back(alphabet[rng.NextBounded(alphabet.size())]);
    }
    for (int i = 0; i < nb; ++i) {
      b.push_back(alphabet[rng.NextBounded(alphabet.size())]);
    }
    const Alignment al = d.ComputeWithPath(a, b);
    EXPECT_DOUBLE_EQ(al.distance, d.Compute(a, b));
    double sum = 0.0;
    for (const Coupling& c : al.couplings) sum += c.cost;
    EXPECT_NEAR(sum, al.distance, 1e-9);
    const auto err = ValidateAlignment(al, na, nb, /*allow_gaps=*/true);
    EXPECT_FALSE(err.has_value()) << *err;
  }
}

TEST(WeightedEditTest, EmptySequences) {
  const WeightedEditDistance d(SubstitutionCostModel::ProteinClasses());
  EXPECT_DOUBLE_EQ(d.Compute(Str(""), Str("")), 0.0);
  EXPECT_NEAR(d.Compute(Str("AC"), Str("")), 1.6, 1e-12);  // two gaps @0.8
}

}  // namespace
}  // namespace subseq
