// The SIMD bit-compatibility contract (distance/simd/kernels.h): every
// kernel produces element-wise identical doubles at every dispatch
// level, ComputeMany equals a loop of Compute bitwise, and the whole
// matcher pipeline is invariant under dispatch level, prefilter knob,
// thread budget, and shard count. AVX2 halves of the comparisons skip
// (not pass) on machines without AVX2.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <span>
#include <vector>

#include "subseq/core/rng.h"
#include "subseq/distance/dtw.h"
#include "subseq/distance/erp.h"
#include "subseq/distance/euclidean.h"
#include "subseq/distance/frechet.h"
#include "subseq/distance/lb_keogh.h"
#include "subseq/distance/lp.h"
#include "subseq/distance/simd/cpu_features.h"
#include "subseq/distance/simd/kernels.h"
#include "subseq/distance/weighted_edit.h"
#include "subseq/frame/matcher.h"
#include "testing/helpers.h"

namespace subseq {
namespace {

using ::subseq::testing::RandomSeries;
using ::subseq::testing::RandomString;
using ::subseq::testing::RandomTrack;

constexpr double kInf = std::numeric_limits<double>::infinity();

// Bitwise double equality: the contract is stronger than ==, which
// would let -0.0 vs +0.0 slip through.
uint64_t Bits(double x) {
  uint64_t u;
  std::memcpy(&u, &x, sizeof(u));
  return u;
}

#define EXPECT_BITEQ(a, b) EXPECT_EQ(Bits(a), Bits(b))
#define ASSERT_BITEQ(a, b) ASSERT_EQ(Bits(a), Bits(b))

bool HaveAvx2() {
  return simd::CpuSupportsAvx2() && simd::GetAvx2Kernels() != nullptr;
}

// Forces a dispatch level for a scope; restores auto-detection on exit.
class ScopedSimdLevel {
 public:
  explicit ScopedSimdLevel(simd::SimdLevel level)
      : ok_(simd::SetSimdLevelForTesting(level)) {}
  ~ScopedSimdLevel() { simd::ClearSimdLevelForTesting(); }
  bool ok() const { return ok_; }

 private:
  bool ok_;
};

// Forces (or disables, with -1) the anti-diagonal single-pair DP for a
// scope; restores the default threshold resolution on exit.
class ScopedAntidiagThreshold {
 public:
  explicit ScopedAntidiagThreshold(int threshold) {
    simd::SetAntidiagThresholdForTesting(threshold);
  }
  ~ScopedAntidiagThreshold() { simd::ClearAntidiagThresholdForTesting(); }
};

// Randomized lengths spanning sub-lane, lane-boundary, and long cases.
std::vector<int32_t> TestLengths(Rng* rng) {
  std::vector<int32_t> lengths = {1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 31, 32,
                                  33, 63, 64, 65, 100, 127, 128, 129};
  for (int i = 0; i < 8; ++i) {
    lengths.push_back(static_cast<int32_t>(rng->NextInt(1, 512)));
  }
  return lengths;
}

// ---------------------------------------------------------------------------
// Kernel-level: portable vs AVX2, every kernel, bitwise.

class KernelEquivalenceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!HaveAvx2()) GTEST_SKIP() << "AVX2 unavailable on this machine";
    portable_ = simd::GetPortableKernels();
    avx2_ = simd::GetAvx2Kernels();
  }
  const simd::Kernels* portable_ = nullptr;
  const simd::Kernels* avx2_ = nullptr;
};

TEST_F(KernelEquivalenceTest, ElementWiseRows) {
  Rng rng(11);
  for (const int32_t n : TestLengths(&rng)) {
    const size_t un = static_cast<size_t>(n);
    const std::vector<double> b = RandomSeries(&rng, n, -5.0, 5.0);
    const double a = rng.NextDouble(-5.0, 5.0);
    std::vector<double> p(un), v(un);
    portable_->abs_diff_row(a, b.data(), p.data(), un);
    avx2_->abs_diff_row(a, b.data(), v.data(), un);
    for (size_t j = 0; j < un; ++j) ASSERT_BITEQ(p[j], v[j]);

    const std::vector<Point2d> track = RandomTrack(&rng, n);
    const Point2d q{rng.NextDouble(0.0, 10.0), rng.NextDouble(0.0, 10.0)};
    portable_->point_dist_row(q, track.data(), p.data(), un);
    avx2_->point_dist_row(q, track.data(), v.data(), un);
    for (size_t j = 0; j < un; ++j) ASSERT_BITEQ(p[j], v[j]);

    const std::vector<double> table = RandomSeries(&rng, 64, 0.0, 3.0);
    std::vector<int32_t> idx(un);
    for (size_t j = 0; j < un; ++j) {
      idx[j] = static_cast<int32_t>(rng.NextBounded(64));
    }
    portable_->gather_row(table.data(), idx.data(), p.data(), un);
    avx2_->gather_row(table.data(), idx.data(), v.data(), un);
    for (size_t j = 0; j < un; ++j) ASSERT_BITEQ(p[j], v[j]);
  }
}

TEST_F(KernelEquivalenceTest, DtwCombineRow) {
  Rng rng(22);
  for (const int32_t m : TestLengths(&rng)) {
    const size_t um = static_cast<size_t>(m);
    // DP rows are indexed 0..m with column 0 the wall; exercise both
    // full-band rows (j_lo = 1) and banded interior rows.
    std::vector<double> prev = RandomSeries(&rng, m + 1, 0.0, 20.0);
    if (rng.NextBool(0.3)) prev[0] = kInf;
    const std::vector<double> cost = RandomSeries(&rng, m + 1, 0.0, 4.0);
    const size_t j_lo =
        1 + static_cast<size_t>(rng.NextBounded(static_cast<uint64_t>(m)));
    const size_t j_hi =
        j_lo + static_cast<size_t>(
                   rng.NextBounded(static_cast<uint64_t>(um - j_lo + 1)));
    std::vector<double> p(um + 1, kInf), v(um + 1, kInf);
    p[j_lo - 1] = v[j_lo - 1] = rng.NextBool(0.5) ? kInf : prev[j_lo - 1];
    const double pmin =
        portable_->dtw_combine_row(prev.data(), p.data(), cost.data(), j_lo,
                                   j_hi);
    const double vmin =
        avx2_->dtw_combine_row(prev.data(), v.data(), cost.data(), j_lo,
                               j_hi);
    ASSERT_BITEQ(pmin, vmin);
    for (size_t j = 0; j <= um; ++j) ASSERT_BITEQ(p[j], v[j]);
  }
}

TEST_F(KernelEquivalenceTest, GapCombineRow) {
  Rng rng(33);
  for (const int32_t m : TestLengths(&rng)) {
    const size_t um = static_cast<size_t>(m);
    const std::vector<double> prev = RandomSeries(&rng, m + 1, 0.0, 20.0);
    const std::vector<double> sub = RandomSeries(&rng, m + 1, 0.0, 4.0);
    const std::vector<double> gap_b = RandomSeries(&rng, m + 1, 0.0, 4.0);
    const double gap_a = rng.NextDouble(0.0, 4.0);
    std::vector<double> p(um + 1), v(um + 1);
    const double pmin = portable_->gap_combine_row(
        prev.data(), p.data(), sub.data(), gap_a, gap_b.data(), um);
    const double vmin = avx2_->gap_combine_row(
        prev.data(), v.data(), sub.data(), gap_a, gap_b.data(), um);
    ASSERT_BITEQ(pmin, vmin);
    for (size_t j = 0; j <= um; ++j) ASSERT_BITEQ(p[j], v[j]);
  }
}

TEST_F(KernelEquivalenceTest, FrechetCombineRow) {
  Rng rng(44);
  for (const int32_t m : TestLengths(&rng)) {
    const size_t um = static_cast<size_t>(m);
    const std::vector<double> prev = RandomSeries(&rng, m, 0.0, 20.0);
    const std::vector<double> cost = RandomSeries(&rng, m, 0.0, 10.0);
    std::vector<double> p(um), v(um);
    const double pmin = portable_->frechet_combine_row(prev.data(), p.data(),
                                                       cost.data(), um);
    const double vmin = avx2_->frechet_combine_row(prev.data(), v.data(),
                                                   cost.data(), um);
    ASSERT_BITEQ(pmin, vmin);
    for (size_t j = 0; j < um; ++j) ASSERT_BITEQ(p[j], v[j]);
  }
}

// Transposes 4 equal-length series into the lane layout.
std::vector<double> ToLanes(const std::vector<std::vector<double>>& c) {
  const size_t n = c[0].size();
  std::vector<double> lanes(n * 4);
  for (size_t j = 0; j < n; ++j) {
    for (size_t k = 0; k < 4; ++k) lanes[j * 4 + k] = c[k][j];
  }
  return lanes;
}

TEST_F(KernelEquivalenceTest, VerticalBatchKernelsF64) {
  Rng rng(55);
  const EuclideanDistance1D euclid;
  const LInfDistance1D linf(kLInfinity);
  const DtwDistance1D dtw;
  for (const int32_t n : TestLengths(&rng)) {
    const std::vector<double> a = RandomSeries(&rng, n, -5.0, 5.0);
    std::vector<std::vector<double>> cands;
    for (int k = 0; k < 4; ++k) cands.push_back(RandomSeries(&rng, n));
    const std::vector<double> lanes = ToLanes(cands);
    const size_t un = static_cast<size_t>(n);
    double p[4], v[4];

    portable_->euclidean4_f64(a.data(), lanes.data(), un, p);
    avx2_->euclidean4_f64(a.data(), lanes.data(), un, v);
    for (int k = 0; k < 4; ++k) {
      ASSERT_BITEQ(p[k], v[k]);
      // Vertical contract: each lane == the scalar single-pair result.
      ASSERT_BITEQ(p[k], euclid.Compute(a, cands[static_cast<size_t>(k)]));
    }

    portable_->linf4_f64(a.data(), lanes.data(), un, p);
    avx2_->linf4_f64(a.data(), lanes.data(), un, v);
    for (int k = 0; k < 4; ++k) {
      ASSERT_BITEQ(p[k], v[k]);
      ASSERT_BITEQ(p[k], linf.Compute(a, cands[static_cast<size_t>(k)]));
    }

    if (n <= 129) {  // keep the O(n^2) x 4 DP affordable
      portable_->dtw4_f64(a.data(), un, lanes.data(), un, p);
      avx2_->dtw4_f64(a.data(), un, lanes.data(), un, v);
      for (int k = 0; k < 4; ++k) {
        ASSERT_BITEQ(p[k], v[k]);
        ASSERT_BITEQ(p[k], dtw.Compute(a, cands[static_cast<size_t>(k)]));
      }
    }
  }
}

TEST_F(KernelEquivalenceTest, VerticalBatchKernelsP2d) {
  Rng rng(66);
  const EuclideanDistance2D euclid;
  const MinkowskiDistance2D linf(kLInfinity);
  const DtwDistance2D dtw;
  for (const int32_t n : TestLengths(&rng)) {
    if (n > 129) continue;
    const std::vector<Point2d> a = RandomTrack(&rng, n);
    std::vector<std::vector<Point2d>> cands;
    for (int k = 0; k < 4; ++k) cands.push_back(RandomTrack(&rng, n));
    const size_t un = static_cast<size_t>(n);
    std::vector<double> lanes_x(un * 4), lanes_y(un * 4);
    for (size_t j = 0; j < un; ++j) {
      for (size_t k = 0; k < 4; ++k) {
        lanes_x[j * 4 + k] = cands[k][j].x;
        lanes_y[j * 4 + k] = cands[k][j].y;
      }
    }
    double p[4], v[4];

    portable_->euclidean4_p2d(a.data(), lanes_x.data(), lanes_y.data(), un,
                              p);
    avx2_->euclidean4_p2d(a.data(), lanes_x.data(), lanes_y.data(), un, v);
    for (int k = 0; k < 4; ++k) {
      ASSERT_BITEQ(p[k], v[k]);
      ASSERT_BITEQ(p[k], euclid.Compute(a, cands[static_cast<size_t>(k)]));
    }

    portable_->linf4_p2d(a.data(), lanes_x.data(), lanes_y.data(), un, p);
    avx2_->linf4_p2d(a.data(), lanes_x.data(), lanes_y.data(), un, v);
    for (int k = 0; k < 4; ++k) {
      ASSERT_BITEQ(p[k], v[k]);
      ASSERT_BITEQ(p[k], linf.Compute(a, cands[static_cast<size_t>(k)]));
    }

    portable_->dtw4_p2d(a.data(), un, lanes_x.data(), lanes_y.data(), un, p);
    avx2_->dtw4_p2d(a.data(), un, lanes_x.data(), lanes_y.data(), un, v);
    for (int k = 0; k < 4; ++k) {
      ASSERT_BITEQ(p[k], v[k]);
      ASSERT_BITEQ(p[k], dtw.Compute(a, cands[static_cast<size_t>(k)]));
    }
  }
}

TEST_F(KernelEquivalenceTest, LbKeoghBlock4DecisionInvariance) {
  Rng rng(77);
  for (int iter = 0; iter < 40; ++iter) {
    const int32_t n = static_cast<int32_t>(rng.NextInt(1, 256));
    const size_t un = static_cast<size_t>(n);
    const std::vector<double> query = RandomSeries(&rng, n);
    const LbKeoghEnvelope env(query, /*band=*/-1);
    std::vector<std::vector<double>> cands;
    for (int k = 0; k < 4; ++k) {
      // Mix near and far candidates so both prune outcomes occur.
      cands.push_back(rng.NextBool(0.5) ? RandomSeries(&rng, n, 0.0, 10.0)
                                        : RandomSeries(&rng, n, 20.0, 40.0));
    }
    const double cutoff = rng.NextDouble(0.0, 30.0);
    double p[4], v[4];
    portable_->lb_keogh_block4(env.upper().data(), env.lower().data(), un,
                               cands[0].data(), cands[1].data(),
                               cands[2].data(), cands[3].data(), cutoff, p);
    avx2_->lb_keogh_block4(env.upper().data(), env.lower().data(), un,
                           cands[0].data(), cands[1].data(), cands[2].data(),
                           cands[3].data(), cutoff, v);
    for (int k = 0; k < 4; ++k) {
      const double exact = env.LowerBound(cands[static_cast<size_t>(k)]);
      // The early-abandon contract: exact (and so bit-identical across
      // levels) when <= cutoff; otherwise only the pruning decision is
      // pinned — abandoned partial sums may differ between levels.
      ASSERT_EQ(p[k] > cutoff, exact > cutoff);
      ASSERT_EQ(v[k] > cutoff, exact > cutoff);
      if (exact <= cutoff) {
        ASSERT_BITEQ(p[k], exact);
        ASSERT_BITEQ(v[k], exact);
      }
    }
  }
}

TEST_F(KernelEquivalenceTest, LbKimBlock) {
  Rng rng(88);
  for (const int32_t n : TestLengths(&rng)) {
    const size_t un = static_cast<size_t>(n);
    const double qf = rng.NextDouble(-5.0, 5.0);
    const double ql = rng.NextDouble(-5.0, 5.0);
    const double qmin = rng.NextDouble(-8.0, 0.0);
    const double qmax = qmin + rng.NextDouble(0.0, 10.0);
    const std::vector<double> first = RandomSeries(&rng, n, -5.0, 5.0);
    const std::vector<double> last = RandomSeries(&rng, n, -5.0, 5.0);
    std::vector<double> cmin = RandomSeries(&rng, n, -8.0, 0.0);
    std::vector<double> cmax(un);
    for (size_t j = 0; j < un; ++j) {
      cmax[j] = cmin[j] + rng.NextDouble(0.0, 10.0);
    }
    for (const int use_endpoint_sum : {0, 1}) {
      std::vector<double> p(un), v(un);
      portable_->lb_kim_block(qf, ql, qmin, qmax, use_endpoint_sum,
                              first.data(), last.data(), cmin.data(),
                              cmax.data(), un, p.data());
      avx2_->lb_kim_block(qf, ql, qmin, qmax, use_endpoint_sum, first.data(),
                          last.data(), cmin.data(), cmax.data(), un,
                          v.data());
      for (size_t j = 0; j < un; ++j) {
        // Exact O(1) outputs — values, not just decisions, match the
        // documented formula bitwise at every level.
        const double df = std::fabs(qf - first[j]);
        const double dl = std::fabs(ql - last[j]);
        const double ends =
            use_endpoint_sum != 0 ? df + dl : std::max(df, dl);
        const double expected =
            std::max(std::max(ends, std::fabs(qmax - cmax[j])),
                     std::fabs(qmin - cmin[j]));
        ASSERT_BITEQ(p[j], expected);
        ASSERT_BITEQ(v[j], expected);
      }
    }
  }
}

TEST_F(KernelEquivalenceTest, AntidiagSinglePairF64) {
  // Anti-diagonal kernels against the row-kernel reference (the same
  // distance with the wavefront disabled) and across levels, bitwise;
  // bounded calls follow the ComputeBounded contract.
  Rng rng(99);
  const DtwDistance1D dtw;
  const ErpDistance1D erp;
  for (int iter = 0; iter < 30; ++iter) {
    const int32_t n = static_cast<int32_t>(rng.NextInt(1, 160));
    const int32_t m = static_cast<int32_t>(rng.NextInt(1, 160));
    const std::vector<double> a = RandomSeries(&rng, n, -5.0, 5.0);
    const std::vector<double> b = RandomSeries(&rng, m, -5.0, 5.0);
    const size_t sn = static_cast<size_t>(n), sm = static_cast<size_t>(m);

    double row_dtw, row_erp;
    {
      ScopedAntidiagThreshold off(-1);
      ScopedSimdLevel scoped(simd::SimdLevel::kPortable);
      row_dtw = dtw.Compute(a, b);
      row_erp = erp.Compute(a, b);
    }
    const double pd =
        portable_->dtw_antidiag_f64(a.data(), sn, b.data(), sm, kInf);
    const double vd =
        avx2_->dtw_antidiag_f64(a.data(), sn, b.data(), sm, kInf);
    ASSERT_BITEQ(pd, row_dtw);
    ASSERT_BITEQ(vd, row_dtw);
    const double pe =
        portable_->erp_antidiag_f64(a.data(), sn, b.data(), sm, 0.0, kInf);
    const double ve =
        avx2_->erp_antidiag_f64(a.data(), sn, b.data(), sm, 0.0, kInf);
    ASSERT_BITEQ(pe, row_erp);
    ASSERT_BITEQ(ve, row_erp);

    const double bound = rng.NextDouble(0.0, 2.0 * (row_dtw + 1.0));
    for (const double got :
         {portable_->dtw_antidiag_f64(a.data(), sn, b.data(), sm, bound),
          avx2_->dtw_antidiag_f64(a.data(), sn, b.data(), sm, bound)}) {
      if (row_dtw <= bound) {
        ASSERT_BITEQ(got, row_dtw);
      } else {
        ASSERT_GT(got, bound);
      }
    }
    for (const double got :
         {portable_->erp_antidiag_f64(a.data(), sn, b.data(), sm, 0.0,
                                      bound),
          avx2_->erp_antidiag_f64(a.data(), sn, b.data(), sm, 0.0, bound)}) {
      if (row_erp <= bound) {
        ASSERT_BITEQ(got, row_erp);
      } else {
        ASSERT_GT(got, bound);
      }
    }
  }
}

TEST_F(KernelEquivalenceTest, AntidiagSinglePairP2d) {
  Rng rng(111);
  const DtwDistance2D dtw;
  const ErpDistance2D erp;
  const Point2d gap{0.0, 0.0};
  for (int iter = 0; iter < 20; ++iter) {
    const int32_t n = static_cast<int32_t>(rng.NextInt(1, 120));
    const int32_t m = static_cast<int32_t>(rng.NextInt(1, 120));
    const std::vector<Point2d> a = RandomTrack(&rng, n);
    const std::vector<Point2d> b = RandomTrack(&rng, m);
    const size_t sn = static_cast<size_t>(n), sm = static_cast<size_t>(m);

    double row_dtw, row_erp;
    {
      ScopedAntidiagThreshold off(-1);
      ScopedSimdLevel scoped(simd::SimdLevel::kPortable);
      row_dtw = dtw.Compute(a, b);
      row_erp = erp.Compute(a, b);
    }
    for (const simd::Kernels* k : {portable_, avx2_}) {
      ASSERT_BITEQ(k->dtw_antidiag_p2d(a.data(), sn, b.data(), sm, kInf),
                   row_dtw);
      ASSERT_BITEQ(
          k->erp_antidiag_p2d(a.data(), sn, b.data(), sm, gap, kInf),
          row_erp);
      const double bound = rng.NextDouble(0.0, 2.0 * (row_dtw + 1.0));
      const double bounded =
          k->dtw_antidiag_p2d(a.data(), sn, b.data(), sm, bound);
      if (row_dtw <= bound) {
        ASSERT_BITEQ(bounded, row_dtw);
      } else {
        ASSERT_GT(bounded, bound);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Distance-level: Compute / ComputeBounded / ComputeMany across levels.

template <typename T, typename MakeSeq>
void CheckDistanceAcrossLevels(const SequenceDistance<T>& dist, Rng* rng,
                               const MakeSeq& make) {
  for (int iter = 0; iter < 30; ++iter) {
    const int32_t n = static_cast<int32_t>(rng->NextInt(1, 96));
    const int32_t m = static_cast<int32_t>(rng->NextInt(1, 96));
    const std::vector<T> a = make(n);
    const std::vector<T> b = make(m);

    double exact_portable, exact_native;
    {
      ScopedSimdLevel scoped(simd::SimdLevel::kPortable);
      ASSERT_TRUE(scoped.ok());
      exact_portable = dist.Compute(a, b);
    }
    {
      ScopedSimdLevel scoped(simd::SimdLevel::kAvx2);
      ASSERT_TRUE(scoped.ok());
      exact_native = dist.Compute(a, b);
    }
    ASSERT_BITEQ(exact_portable, exact_native);

    // ComputeBounded agreement rule: exact when within the bound; both
    // strictly above it otherwise (abandoned values are unspecified).
    const double bound = rng->NextDouble(0.0, 2.0 * (exact_portable + 1.0));
    double bounded_portable, bounded_native;
    {
      ScopedSimdLevel scoped(simd::SimdLevel::kPortable);
      bounded_portable = dist.ComputeBounded(a, b, bound);
    }
    {
      ScopedSimdLevel scoped(simd::SimdLevel::kAvx2);
      bounded_native = dist.ComputeBounded(a, b, bound);
    }
    if (exact_portable <= bound) {
      ASSERT_BITEQ(bounded_portable, exact_portable);
      ASSERT_BITEQ(bounded_native, exact_native);
    } else {
      ASSERT_GT(bounded_portable, bound);
      ASSERT_GT(bounded_native, bound);
    }
  }
}

template <typename T, typename MakeSeq>
void CheckComputeManyMatchesLoop(const SequenceDistance<T>& dist, Rng* rng,
                                 const MakeSeq& make) {
  const std::vector<simd::SimdLevel> levels =
      HaveAvx2() ? std::vector<simd::SimdLevel>{simd::SimdLevel::kPortable,
                                                simd::SimdLevel::kAvx2}
                 : std::vector<simd::SimdLevel>{simd::SimdLevel::kPortable};
  for (const simd::SimdLevel level : levels) {
    ScopedSimdLevel scoped(level);
    ASSERT_TRUE(scoped.ok());
    for (int iter = 0; iter < 6; ++iter) {
      const int32_t n = static_cast<int32_t>(rng->NextInt(1, 64));
      const std::vector<T> a = make(n);
      // Mixed-length batch: equal-length runs (the batched fast path),
      // odd lengths and empties (the per-pair fallback), interleaved.
      std::vector<std::vector<T>> storage;
      for (int c = 0; c < 23; ++c) {
        const int32_t len = rng->NextBool(0.7)
                                ? n
                                : static_cast<int32_t>(rng->NextInt(0, 64));
        storage.push_back(make(len));
      }
      std::vector<std::span<const T>> views(storage.begin(), storage.end());
      std::vector<double> batched(views.size());
      dist.ComputeMany(a, views, batched.data());
      for (size_t c = 0; c < views.size(); ++c) {
        ASSERT_BITEQ(batched[c], dist.Compute(a, views[c]));
      }
    }
  }
}

TEST(SimdDistanceEquivalence, ScalarDistances) {
  if (!HaveAvx2()) GTEST_SKIP() << "AVX2 unavailable on this machine";
  Rng rng(101);
  const auto make = [&rng](int32_t n) { return RandomSeries(&rng, n); };
  CheckDistanceAcrossLevels(DtwDistance1D(), &rng, make);
  CheckDistanceAcrossLevels(DtwDistance1D(/*band=*/3), &rng, make);
  CheckDistanceAcrossLevels(ErpDistance1D(), &rng, make);
  CheckDistanceAcrossLevels(FrechetDistance1D(), &rng, make);
  CheckDistanceAcrossLevels(EuclideanDistance1D(), &rng, make);
  CheckDistanceAcrossLevels(LInfDistance1D(kLInfinity), &rng, make);
}

TEST(SimdDistanceEquivalence, TrajectoryDistances) {
  if (!HaveAvx2()) GTEST_SKIP() << "AVX2 unavailable on this machine";
  Rng rng(202);
  const auto make = [&rng](int32_t n) { return RandomTrack(&rng, n); };
  CheckDistanceAcrossLevels(DtwDistance2D(), &rng, make);
  CheckDistanceAcrossLevels(ErpDistance2D(), &rng, make);
  CheckDistanceAcrossLevels(FrechetDistance2D(), &rng, make);
  CheckDistanceAcrossLevels(EuclideanDistance2D(), &rng, make);
}

TEST(SimdDistanceEquivalence, WeightedEdit) {
  if (!HaveAvx2()) GTEST_SKIP() << "AVX2 unavailable on this machine";
  Rng rng(303);
  const WeightedEditDistance dist(SubstitutionCostModel::ProteinClasses());
  const auto make = [&rng](int32_t n) {
    return RandomString(&rng, n, "ARNDCQEGHILKMFPSTWYV");
  };
  CheckDistanceAcrossLevels(dist, &rng, make);
}

TEST(SimdDistanceEquivalence, ComputeManyMatchesComputeLoop) {
  Rng rng(404);
  const auto make1d = [&rng](int32_t n) { return RandomSeries(&rng, n); };
  const auto make2d = [&rng](int32_t n) { return RandomTrack(&rng, n); };
  CheckComputeManyMatchesLoop(DtwDistance1D(), &rng, make1d);
  CheckComputeManyMatchesLoop(DtwDistance1D(/*band=*/2), &rng, make1d);
  CheckComputeManyMatchesLoop(EuclideanDistance1D(), &rng, make1d);
  CheckComputeManyMatchesLoop(LInfDistance1D(kLInfinity), &rng, make1d);
  CheckComputeManyMatchesLoop(L1Distance1D(1.0), &rng, make1d);
  CheckComputeManyMatchesLoop(DtwDistance2D(), &rng, make2d);
  CheckComputeManyMatchesLoop(EuclideanDistance2D(), &rng, make2d);
}

// The SUBSEQ_ANTIDIAG knob is value-invisible: forcing the wavefront DP
// at every length produces bitwise the row-DP results, for Compute and
// under the ComputeBounded contract, at every dispatch level.
template <typename T, typename MakeSeq>
void CheckAntidiagForcedMatchesDisabled(const SequenceDistance<T>& dist,
                                        Rng* rng, const MakeSeq& make) {
  const std::vector<simd::SimdLevel> levels =
      HaveAvx2() ? std::vector<simd::SimdLevel>{simd::SimdLevel::kPortable,
                                                simd::SimdLevel::kAvx2}
                 : std::vector<simd::SimdLevel>{simd::SimdLevel::kPortable};
  for (const simd::SimdLevel level : levels) {
    ScopedSimdLevel scoped(level);
    ASSERT_TRUE(scoped.ok());
    for (int iter = 0; iter < 20; ++iter) {
      const int32_t n = static_cast<int32_t>(rng->NextInt(1, 96));
      const int32_t m = static_cast<int32_t>(rng->NextInt(1, 96));
      const std::vector<T> a = make(n);
      const std::vector<T> b = make(m);

      double rows, waves;
      {
        ScopedAntidiagThreshold off(-1);
        rows = dist.Compute(a, b);
      }
      {
        ScopedAntidiagThreshold on(1);
        waves = dist.Compute(a, b);
      }
      ASSERT_BITEQ(rows, waves);

      const double bound = rng->NextDouble(0.0, 2.0 * (rows + 1.0));
      double rows_bounded, waves_bounded;
      {
        ScopedAntidiagThreshold off(-1);
        rows_bounded = dist.ComputeBounded(a, b, bound);
      }
      {
        ScopedAntidiagThreshold on(1);
        waves_bounded = dist.ComputeBounded(a, b, bound);
      }
      if (rows <= bound) {
        ASSERT_BITEQ(rows_bounded, rows);
        ASSERT_BITEQ(waves_bounded, rows);
      } else {
        ASSERT_GT(rows_bounded, bound);
        ASSERT_GT(waves_bounded, bound);
      }
    }
  }
}

TEST(SimdAntidiagEquivalence, ForcedMatchesDisabledBitwise) {
  Rng rng(707);
  const auto make1d = [&rng](int32_t n) { return RandomSeries(&rng, n); };
  const auto make2d = [&rng](int32_t n) { return RandomTrack(&rng, n); };
  CheckAntidiagForcedMatchesDisabled(DtwDistance1D(), &rng, make1d);
  CheckAntidiagForcedMatchesDisabled(ErpDistance1D(), &rng, make1d);
  CheckAntidiagForcedMatchesDisabled(DtwDistance2D(), &rng, make2d);
  CheckAntidiagForcedMatchesDisabled(ErpDistance2D(), &rng, make2d);
}

// ---------------------------------------------------------------------------
// Full pipeline: matches AND stats invariant under dispatch level,
// prefilter knob, thread budget, and shard count.

struct PipelineRun {
  std::vector<SubsequenceMatch> matches;
  MatchQueryStats stats;
};

PipelineRun RunPipeline(const SequenceDatabase<double>& db,
                        const DtwDistance1D& dtw,
                        const std::vector<double>& query, double epsilon,
                        bool prefilter, int32_t threads, int32_t shards) {
  MatcherOptions options;
  options.lambda = 8;
  options.lambda0 = 1;
  options.index_kind = IndexKind::kLinearScan;
  options.lb_prefilter = prefilter;
  options.exec.num_threads = threads;
  options.exec.num_shards = shards;
  auto matcher = SubsequenceMatcher<double>::Build(db, dtw, options);
  EXPECT_TRUE(matcher.ok()) << matcher.status().message();
  PipelineRun run;
  auto result = matcher.value()->RangeSearch(query, epsilon, &run.stats);
  EXPECT_TRUE(result.ok()) << result.status().message();
  run.matches = std::move(result).ValueOrDie();
  return run;
}

TEST(SimdPipelineDeterminism, InvariantAcrossDispatchPrefilterThreadsShards) {
  Rng rng(505);
  SequenceDatabase<double> db;
  for (int s = 0; s < 6; ++s) {
    db.Add(Sequence<double>(RandomSeries(&rng, 80)));
  }
  // A query stitched from database material so real matches exist.
  std::vector<double> query = RandomSeries(&rng, 10);
  const std::span<const double> donor = db.at(1).view();
  query.insert(query.end(), donor.begin(), donor.begin() + 24);
  const double epsilon = 2.5;
  const DtwDistance1D dtw;

  const PipelineRun reference =
      RunPipeline(db, dtw, query, epsilon, /*prefilter=*/false,
                  /*threads=*/1, /*shards=*/1);
  ASSERT_FALSE(reference.matches.empty());

  const std::vector<simd::SimdLevel> levels =
      HaveAvx2() ? std::vector<simd::SimdLevel>{simd::SimdLevel::kPortable,
                                                simd::SimdLevel::kAvx2}
                 : std::vector<simd::SimdLevel>{simd::SimdLevel::kPortable};
  for (const simd::SimdLevel level : levels) {
    ScopedSimdLevel scoped(level);
    ASSERT_TRUE(scoped.ok());
    for (const bool prefilter : {false, true}) {
      for (const int32_t threads : {1, 8}) {
        for (const int32_t shards : {1, 4}) {
          const PipelineRun run =
              RunPipeline(db, dtw, query, epsilon, prefilter, threads,
                          shards);
          ASSERT_EQ(run.matches.size(), reference.matches.size())
              << simd::SimdLevelName(level) << " prefilter=" << prefilter
              << " threads=" << threads << " shards=" << shards;
          for (size_t i = 0; i < run.matches.size(); ++i) {
            EXPECT_EQ(run.matches[i], reference.matches[i]);
            EXPECT_BITEQ(run.matches[i].distance,
                         reference.matches[i].distance);
          }
          EXPECT_EQ(run.stats.segments, reference.stats.segments);
          EXPECT_EQ(run.stats.filter_computations,
                    reference.stats.filter_computations);
          EXPECT_EQ(run.stats.hits, reference.stats.hits);
          EXPECT_EQ(run.stats.chains, reference.stats.chains);
          EXPECT_EQ(run.stats.verifications, reference.stats.verifications);
        }
      }
    }
  }
}

TEST(SimdPipelineDeterminism, EnvKnobSelectsPortable) {
  // The test override outranks the env knob; this only checks that the
  // resolution machinery reports a coherent level and the portable
  // override always succeeds.
  ScopedSimdLevel scoped(simd::SimdLevel::kPortable);
  ASSERT_TRUE(scoped.ok());
  EXPECT_EQ(simd::ActiveSimdLevel(), simd::SimdLevel::kPortable);
  EXPECT_STREQ(simd::GetKernels().name, "portable");
}

}  // namespace
}  // namespace subseq
