#include "subseq/distance/registry.h"

#include <gtest/gtest.h>

namespace subseq {
namespace {

TEST(RegistryTest, StringDistancesResolve) {
  for (const auto name : ListStringDistances()) {
    auto result = MakeStringDistance(name);
    ASSERT_TRUE(result.ok()) << name;
    EXPECT_EQ(result.value()->name(), name);
  }
}

TEST(RegistryTest, ScalarDistancesResolve) {
  for (const auto name : ListScalarDistances()) {
    auto result = MakeScalarDistance(name);
    ASSERT_TRUE(result.ok()) << name;
    EXPECT_EQ(result.value()->name(), name);
  }
}

TEST(RegistryTest, TrajectoryDistancesResolve) {
  for (const auto name : ListTrajectoryDistances()) {
    auto result = MakeTrajectoryDistance(name);
    ASSERT_TRUE(result.ok()) << name;
    EXPECT_EQ(result.value()->name(), name);
  }
}

TEST(RegistryTest, UnknownNamesAreNotFound) {
  EXPECT_EQ(MakeStringDistance("dtw").status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(MakeScalarDistance("bogus").status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(MakeTrajectoryDistance("levenshtein").status().code(),
            StatusCode::kNotFound);
}

TEST(RegistryTest, EvaluationDistancesAreMetricAndConsistent) {
  // The paper's experiments use Levenshtein (PROTEINS) and ERP / DFD
  // (SONGS, TRAJ) precisely because they are metric *and* consistent.
  EXPECT_TRUE(MakeStringDistance("levenshtein").value()->is_metric());
  EXPECT_TRUE(MakeStringDistance("levenshtein").value()->is_consistent());
  EXPECT_TRUE(MakeScalarDistance("erp").value()->is_metric());
  EXPECT_TRUE(MakeStringDistance("weighted-edit").value()->is_metric());
  EXPECT_TRUE(MakeScalarDistance("l1").value()->is_consistent());
  EXPECT_TRUE(MakeScalarDistance("linf").value()->is_metric());
  EXPECT_TRUE(MakeScalarDistance("frechet").value()->is_metric());
  EXPECT_FALSE(MakeScalarDistance("dtw").value()->is_metric());
  EXPECT_TRUE(MakeScalarDistance("dtw").value()->is_consistent());
}

}  // namespace
}  // namespace subseq
