#include "subseq/distance/frechet.h"

#include <gtest/gtest.h>

#include <vector>

#include "subseq/core/rng.h"
#include "subseq/distance/alignment.h"

namespace subseq {
namespace {

TEST(FrechetTest, IdenticalSequencesAtZero) {
  FrechetDistance1D d;
  const std::vector<double> a = {1.0, 5.0, 2.0};
  EXPECT_DOUBLE_EQ(d.Compute(a, a), 0.0);
}

TEST(FrechetTest, MaxOfMatchedCosts) {
  FrechetDistance1D d;
  const std::vector<double> a = {0.0, 0.0, 0.0};
  const std::vector<double> b = {1.0, 2.0, 0.5};
  // Aligned 1:1 is optimal here; the max coupling cost is 2.
  EXPECT_DOUBLE_EQ(d.Compute(a, b), 2.0);
}

TEST(FrechetTest, WarpingReducesMax) {
  FrechetDistance1D d;
  const std::vector<double> a = {0.0, 10.0, 0.0};
  const std::vector<double> b = {0.0, 0.1, 10.0, 0.0};
  // b's extra 0.1 can couple with a's first 0.
  EXPECT_DOUBLE_EQ(d.Compute(a, b), 0.1);
}

TEST(FrechetTest, TimeShiftIsFree) {
  FrechetDistance1D d;
  const std::vector<double> a = {1, 1, 1, 2, 2, 2, 3, 3, 3};
  const std::vector<double> b = {1, 2, 3};
  EXPECT_DOUBLE_EQ(d.Compute(a, b), 0.0);
}

TEST(FrechetTest, SingleElements) {
  FrechetDistance1D d;
  const std::vector<double> a = {1.0};
  const std::vector<double> b = {4.0};
  EXPECT_DOUBLE_EQ(d.Compute(a, b), 3.0);
}

TEST(FrechetTest, EmptySequenceIsInfinite) {
  FrechetDistance1D d;
  const std::vector<double> a = {1.0};
  const std::vector<double> empty;
  EXPECT_EQ(d.Compute(a, empty), kInfiniteDistance);
  EXPECT_DOUBLE_EQ(d.Compute(empty, empty), 0.0);
}

TEST(FrechetTest, SymmetricOnRandomInputs) {
  FrechetDistance1D d;
  Rng rng(43);
  for (int trial = 0; trial < 25; ++trial) {
    std::vector<double> a;
    std::vector<double> b;
    const int na = 1 + static_cast<int>(rng.NextBounded(9));
    const int nb = 1 + static_cast<int>(rng.NextBounded(9));
    for (int i = 0; i < na; ++i) a.push_back(rng.NextDouble(-5, 5));
    for (int i = 0; i < nb; ++i) b.push_back(rng.NextDouble(-5, 5));
    EXPECT_DOUBLE_EQ(d.Compute(a, b), d.Compute(b, a));
  }
}

TEST(FrechetTest, TriangleInequalityOnRandomTriples) {
  FrechetDistance1D d;
  Rng rng(47);
  for (int trial = 0; trial < 50; ++trial) {
    auto make = [&rng]() {
      std::vector<double> v;
      const int n = 1 + static_cast<int>(rng.NextBounded(7));
      for (int i = 0; i < n; ++i) v.push_back(rng.NextDouble(-2, 2));
      return v;
    };
    const auto x = make();
    const auto y = make();
    const auto z = make();
    EXPECT_LE(d.Compute(x, z), d.Compute(x, y) + d.Compute(y, z) + 1e-9);
  }
}

TEST(FrechetTest, DominatedByMaxPairwiseGap) {
  // DFD never exceeds the ground distance between the farthest pair of
  // coupled elements under the identity alignment.
  FrechetDistance1D d;
  const std::vector<double> a = {0.0, 1.0, 2.0, 3.0};
  const std::vector<double> b = {0.5, 1.5, 2.5, 3.5};
  EXPECT_LE(d.Compute(a, b), 0.5 + 1e-12);
}

TEST(FrechetTest, BoundedAbandons) {
  FrechetDistance1D d;
  const std::vector<double> a = {0, 0, 0};
  const std::vector<double> b = {9, 9, 9};
  EXPECT_GT(d.ComputeBounded(a, b, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(d.ComputeBounded(a, b, 100.0), 9.0);
}

TEST(FrechetTest, PathMaxMatchesDistance) {
  FrechetDistance1D d;
  Rng rng(51);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<double> a;
    std::vector<double> b;
    const int na = 1 + static_cast<int>(rng.NextBounded(8));
    const int nb = 1 + static_cast<int>(rng.NextBounded(8));
    for (int i = 0; i < na; ++i) a.push_back(rng.NextDouble(0, 6));
    for (int i = 0; i < nb; ++i) b.push_back(rng.NextDouble(0, 6));
    const Alignment al = d.ComputeWithPath(a, b);
    EXPECT_DOUBLE_EQ(al.distance, d.Compute(a, b));
    double max_cost = 0.0;
    for (const Coupling& c : al.couplings) {
      max_cost = std::max(max_cost, c.cost);
    }
    EXPECT_NEAR(max_cost, al.distance, 1e-9);
    const auto err = ValidateAlignment(al, na, nb, /*allow_gaps=*/false);
    EXPECT_FALSE(err.has_value()) << *err;
  }
}

TEST(FrechetTest, Works2D) {
  FrechetDistance2D d;
  const std::vector<Point2d> a = {{0, 0}, {1, 0}, {2, 0}};
  const std::vector<Point2d> b = {{0, 1}, {1, 1}, {2, 1}};
  EXPECT_DOUBLE_EQ(d.Compute(a, b), 1.0);
}

TEST(FrechetTest, PropertyFlags) {
  FrechetDistance1D d;
  EXPECT_TRUE(d.is_metric());
  EXPECT_TRUE(d.is_consistent());
  EXPECT_EQ(d.name(), "frechet");
}

}  // namespace
}  // namespace subseq
