// The staged lower-bound pruning cascade (frame/lb_prefilter.h): every
// stage is admissible (no false dismissals, pinned by a 200-trial
// battery), stage order is by cost — NOT tightness (LB_Kim can exceed
// LB_Keogh; the counterexample is pinned here) — pruned candidates stay
// billed with per-stage attribution, the matcher pipeline is invariant
// under the knob across threads, shards and routed cells, and a
// payload-bound cascade collapses a routed cell's scattered members
// into one memory-adjacent run without changing any bound value.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <functional>
#include <limits>
#include <memory>
#include <span>
#include <vector>

#include "subseq/core/rng.h"
#include "subseq/distance/dtw.h"
#include "subseq/distance/erp.h"
#include "subseq/distance/lb_erp.h"
#include "subseq/distance/lb_keogh.h"
#include "subseq/distance/lb_kim.h"
#include "subseq/frame/lb_prefilter.h"
#include "subseq/frame/matcher.h"
#include "subseq/frame/window_oracle.h"
#include "subseq/frame/windowing.h"
#include "subseq/metric/linear_scan.h"
#include "subseq/metric/oracle.h"
#include "subseq/metric/routed_index.h"
#include "testing/helpers.h"

namespace subseq {
namespace {

using ::subseq::testing::RandomSeries;

constexpr double kInf = std::numeric_limits<double>::infinity();

uint64_t Bits(double x) {
  uint64_t u;
  std::memcpy(&u, &x, sizeof(u));
  return u;
}

#define EXPECT_BITEQ(a, b) EXPECT_EQ(Bits(a), Bits(b))
#define ASSERT_BITEQ(a, b) ASSERT_EQ(Bits(a), Bits(b))

// Floating-point admissibility margin: the exact distance is itself a
// rounded sum, so a mathematically-valid bound may exceed it by a few
// ulps. The scan absorbs exactly this with LowerBoundPruneCutoff.
double Padded(double d) { return d * (1.0 + 1e-9) + 1e-12; }

// ---------------------------------------------------------------------------
// Admissibility of the individual stages.

TEST(CascadeAdmissibilityTest, KimIsALowerBoundOfDtw) {
  Rng rng(811);
  const DtwDistance1D dtw;
  for (int trial = 0; trial < 200; ++trial) {
    const int32_t n = static_cast<int32_t>(rng.NextInt(1, 32));
    const std::vector<double> q = RandomSeries(&rng, n, -10.0, 10.0);
    const std::vector<double> c = RandomSeries(&rng, n, -10.0, 10.0);
    const LbKimBound kim(q);
    EXPECT_LE(kim.LowerBound(c), Padded(dtw.Compute(q, c)))
        << "trial=" << trial << " n=" << n;
  }
}

TEST(CascadeAdmissibilityTest, ErpSumIsALowerBoundOfErp) {
  // Valid for ANY candidate length: gaps cost the full element under
  // ErpDistance1D's zero gap element, so the bound needs no length gate.
  Rng rng(822);
  const ErpDistance1D erp;
  for (int trial = 0; trial < 200; ++trial) {
    const int32_t n = static_cast<int32_t>(rng.NextInt(1, 32));
    const int32_t m = static_cast<int32_t>(rng.NextInt(1, 32));
    const std::vector<double> q = RandomSeries(&rng, n, -10.0, 10.0);
    const std::vector<double> c = RandomSeries(&rng, m, -10.0, 10.0);
    const LbErpSumBound bound(q);
    EXPECT_LE(bound.LowerBound(c), Padded(erp.Compute(q, c)))
        << "trial=" << trial << " n=" << n << " m=" << m;
  }
}

TEST(CascadeAdmissibilityTest, KimCanExceedKeoghSoOrderIsByCostNotTightness) {
  // The pinned counterexample from distance/lb_kim.h: C sits strictly
  // inside Q's envelope (Keogh = 0) while its endpoints are far from
  // Q's (Kim = 10 = the exact DTW). A "tightness-ordered" cascade would
  // have to run Keogh first and could never justify Kim; the real
  // ordering criterion is per-candidate cost.
  const std::vector<double> q = {0.0, 10.0};
  const std::vector<double> c = {5.0, 5.0};
  const LbKeoghEnvelope env(q, /*band=*/-1);
  const LbKimBound kim(q);
  const DtwDistance1D dtw;
  EXPECT_EQ(env.LowerBound(c), 0.0);
  EXPECT_EQ(kim.LowerBound(c), 10.0);
  EXPECT_EQ(dtw.Compute(q, c), 10.0);
}

// ---------------------------------------------------------------------------
// Window fixture shared by the scan / stage / routed suites.

class CascadeWindowTest : public ::testing::Test {
 protected:
  void Init(uint64_t seed, int32_t num_seqs, int32_t seq_len, int32_t l) {
    Rng rng(seed);
    for (int32_t s = 0; s < num_seqs; ++s) {
      db_.Add(Sequence<double>(RandomSeries(&rng, seq_len, 0.0, 10.0)));
    }
    catalog_ = std::make_unique<WindowCatalog>(
        std::move(WindowCatalog::PartitionDatabase(db_, l)).ValueOrDie());
    features_ = BuildLbFeatureTable(db_, *catalog_);
    executed_ = std::make_shared<std::atomic<int64_t>>(0);
  }

  int32_t num_windows() const { return catalog_->num_windows(); }

  std::span<const double> Window(ObjectId id) const {
    const WindowRef& ref = catalog_->at(id);
    return db_.at(ref.seq).Subsequence(ref.span);
  }

  // The exact segment-vs-window function; every invocation is counted.
  std::function<double(ObjectId)> ExactFn(
      const SequenceDistance<double>& dist,
      std::span<const double> segment) const {
    auto counter = executed_;
    return [this, &dist, segment, counter](ObjectId id) {
      counter->fetch_add(1, std::memory_order_relaxed);
      return dist.Compute(segment, Window(id));
    };
  }

  QueryDistanceFn PlainQuery(const SequenceDistance<double>& dist,
                             std::span<const double> segment) const {
    return QueryDistanceFn(ExactFn(dist, segment));
  }

  QueryDistanceFn CascadeQuery(const SequenceDistance<double>& dist,
                               std::span<const double> segment,
                               bool with_features = true) const {
    std::shared_ptr<const QueryLowerBound> lb = MakeSegmentLowerBound(
        db_, *catalog_, dist, segment, with_features ? features_ : nullptr);
    EXPECT_NE(lb, nullptr);
    PrunableQueryFn p;
    p.fn = ExactFn(dist, segment);
    p.lower_bound = std::move(lb);
    return QueryDistanceFn(std::move(p));
  }

  SequenceDatabase<double> db_;
  std::unique_ptr<WindowCatalog> catalog_;
  std::shared_ptr<const LbFeatureTable> features_;
  std::shared_ptr<std::atomic<int64_t>> executed_;
};

// ---------------------------------------------------------------------------
// Stage mechanics: values, attribution, and the survivor tail.

using CascadeStageTest = CascadeWindowTest;

TEST_F(CascadeStageTest, KimSurvivorsGetExactEnvelopeValuesIncludingTail) {
  // 3 sequences x 3 windows = 9 candidates: at an infinite cutoff every
  // candidate survives LB_Kim, so the Keogh stage covers two full
  // lb_keogh_block4 groups AND a 1-wide LowerBoundAbandoning tail. All
  // three paths — block4 gather, abandoning tail, and the no-Kim strided
  // LowerBoundMany — must produce the envelope's exact value bitwise.
  Init(/*seed=*/91, /*num_seqs=*/3, /*seq_len=*/26, /*l=*/8);
  ASSERT_EQ(num_windows(), 9);
  Rng rng(92);
  const std::vector<double> segment = RandomSeries(&rng, 8, 0.0, 10.0);
  const LbKeoghEnvelope env(segment, /*band=*/-1);

  const DtwDistance1D dtw;
  const std::span<const double> seg_view(segment);
  const auto with_kim =
      MakeSegmentLowerBound(db_, *catalog_, dtw, seg_view, features_);
  const auto keogh_only =
      MakeSegmentLowerBound(db_, *catalog_, dtw, seg_view, nullptr);
  ASSERT_NE(with_kim, nullptr);
  ASSERT_NE(keogh_only, nullptr);

  std::vector<double> staged(9), strided(9);
  with_kim->LowerBoundBlock(0, 9, kInf, staged.data());
  keogh_only->LowerBoundBlock(0, 9, kInf, strided.data());
  for (int32_t i = 0; i < 9; ++i) {
    ASSERT_BITEQ(staged[static_cast<size_t>(i)],
                 strided[static_cast<size_t>(i)]);
    ASSERT_BITEQ(staged[static_cast<size_t>(i)], env.LowerBound(Window(i)));
  }
}

TEST_F(CascadeStageTest, StagedCountsAttributeEveryPrune) {
  Init(/*seed=*/93, /*num_seqs=*/6, /*seq_len=*/80, /*l=*/8);
  Rng rng(94);
  const std::vector<double> segment = RandomSeries(&rng, 8, 0.0, 10.0);
  const DtwDistance1D dtw;
  const auto cascade = MakeSegmentLowerBound(
      db_, *catalog_, dtw, std::span<const double>(segment), features_);
  ASSERT_NE(cascade, nullptr);
  const int32_t n = num_windows();
  std::vector<double> out(static_cast<size_t>(n));
  for (const double epsilon : {0.5, 2.0, 8.0}) {
    const double cutoff = LowerBoundPruneCutoff(epsilon);
    LbBlockCounts counts;
    cascade->LowerBoundBlockStaged(0, n, cutoff, out.data(), &counts);
    int64_t pruned = 0;
    for (int32_t i = 0; i < n; ++i) {
      if (out[static_cast<size_t>(i)] > cutoff) ++pruned;
    }
    // Every prune is attributed to exactly one stage; a DTW cascade
    // never books ERP prunes.
    EXPECT_EQ(counts.kim_pruned + counts.envelope_pruned, pruned)
        << "epsilon=" << epsilon;
    EXPECT_EQ(counts.erp_pruned, 0);
  }
}

// ---------------------------------------------------------------------------
// Scan-level: identical results, full billing, per-stage stats.

using CascadeScanTest = CascadeWindowTest;

TEST_F(CascadeScanTest, DtwCascadePrunesWithoutChangingResultsOrBilling) {
  Init(/*seed=*/95, /*num_seqs=*/6, /*seq_len=*/80, /*l=*/8);
  const LinearScan scan(num_windows());
  const DtwDistance1D dtw;
  // A real window as the segment guarantees at least one true hit.
  const std::span<const double> segment = Window(3);
  const double epsilon = 1.5;

  QueryStats plain_stats;
  const std::vector<ObjectId> plain =
      scan.RangeQuery(PlainQuery(dtw, segment), epsilon, &plain_stats);
  const int64_t plain_executed = executed_->exchange(0);

  QueryStats pruned_stats;
  const std::vector<ObjectId> pruned =
      scan.RangeQuery(CascadeQuery(dtw, segment), epsilon, &pruned_stats);
  const int64_t pruned_executed = executed_->exchange(0);

  EXPECT_EQ(plain, pruned);
  ASSERT_FALSE(plain.empty());
  // Billing is knob-invariant; the saving shows only in the pruned
  // counters and the executed call count.
  EXPECT_EQ(plain_stats.distance_computations, num_windows());
  EXPECT_EQ(pruned_stats.distance_computations, num_windows());
  EXPECT_EQ(plain_executed, num_windows());
  EXPECT_EQ(pruned_executed, num_windows() - pruned_stats.lower_bound_pruned);
  // Per-stage attribution: the O(1) Kim stage fires, prunes are split
  // Kim-then-envelope, and the ERP counter stays silent under DTW.
  EXPECT_GT(pruned_stats.lower_bound_pruned, 0);
  EXPECT_GT(pruned_stats.lb_kim_pruned, 0);
  EXPECT_LE(pruned_stats.lb_kim_pruned, pruned_stats.lower_bound_pruned);
  EXPECT_EQ(pruned_stats.lb_erp_pruned, 0);
}

TEST_F(CascadeScanTest, ErpSumBoundPrunesAndBooksItsOwnCounter) {
  Init(/*seed=*/96, /*num_seqs=*/6, /*seq_len=*/80, /*l=*/8);
  const LinearScan scan(num_windows());
  const ErpDistance1D erp;
  const std::span<const double> segment = Window(11);
  const double epsilon = 2.0;

  // The ERP cascade exists only with a feature table: its single stage
  // reads precomputed window sums.
  EXPECT_EQ(MakeSegmentLowerBound(db_, *catalog_, erp, segment, nullptr),
            nullptr);

  QueryStats plain_stats;
  const std::vector<ObjectId> plain =
      scan.RangeQuery(PlainQuery(erp, segment), epsilon, &plain_stats);
  executed_->exchange(0);

  QueryStats pruned_stats;
  const std::vector<ObjectId> pruned =
      scan.RangeQuery(CascadeQuery(erp, segment), epsilon, &pruned_stats);
  const int64_t pruned_executed = executed_->exchange(0);

  EXPECT_EQ(plain, pruned);
  ASSERT_FALSE(plain.empty());
  EXPECT_EQ(pruned_stats.distance_computations, num_windows());
  EXPECT_EQ(pruned_executed, num_windows() - pruned_stats.lower_bound_pruned);
  // The sum bound is the whole cascade: every prune is an ERP prune.
  EXPECT_GT(pruned_stats.lower_bound_pruned, 0);
  EXPECT_EQ(pruned_stats.lb_erp_pruned, pruned_stats.lower_bound_pruned);
  EXPECT_EQ(pruned_stats.lb_kim_pruned, 0);
}

TEST_F(CascadeScanTest, NoFalseDismissalsIn200RandomTrials) {
  // Property battery: across random segments and epsilons — including
  // near-zero epsilons where rounding at the cutoff would show — the
  // cascaded scan returns exactly the plain scan's hit set, for both
  // distances.
  Init(/*seed=*/97, /*num_seqs=*/5, /*seq_len=*/48, /*l=*/8);
  const LinearScan scan(num_windows());
  const DtwDistance1D dtw;
  const ErpDistance1D erp;
  Rng rng(98);
  for (int trial = 0; trial < 200; ++trial) {
    // Half the segments are perturbed database windows, so true hits
    // exist right at the decision boundary.
    std::vector<double> segment;
    if (rng.NextBool(0.5)) {
      const std::span<const double> donor = Window(static_cast<ObjectId>(
          rng.NextBounded(static_cast<uint64_t>(num_windows()))));
      segment.assign(donor.begin(), donor.end());
      for (double& v : segment) v += rng.NextDouble(-0.3, 0.3);
    } else {
      segment = RandomSeries(&rng, 8, 0.0, 10.0);
    }
    const double epsilon = rng.NextDouble(0.0, 6.0);
    const SequenceDistance<double>& dist =
        (trial % 2 == 0) ? static_cast<const SequenceDistance<double>&>(dtw)
                         : erp;
    const std::vector<ObjectId> plain =
        scan.RangeQuery(PlainQuery(dist, segment), epsilon, nullptr);
    const std::vector<ObjectId> pruned =
        scan.RangeQuery(CascadeQuery(dist, segment), epsilon, nullptr);
    ASSERT_EQ(plain, pruned) << "trial=" << trial << " epsilon=" << epsilon;
  }
}

// ---------------------------------------------------------------------------
// Routed cells: payload rebinding keeps pruning live and collapses the
// scattered member set into one adjacent run.

using CascadeRoutedTest = CascadeWindowTest;

TEST_F(CascadeRoutedTest, RebindingKeepsPruningLiveInsideProbedCells) {
  Init(/*seed=*/99, /*num_seqs=*/6, /*seq_len=*/80, /*l=*/8);
  const ErpDistance1D erp;  // routing needs a metric distance
  const WindowOracle<double> oracle(db_, *catalog_, erp);
  RoutedIndexOptions options;
  options.num_cells = 4;
  auto routed = RoutedIndex::Build(
      oracle,
      [](const DistanceOracle& cell_oracle, int32_t) {
        return Result<std::unique_ptr<RangeIndex>>(
            std::make_unique<LinearScan>(cell_oracle.size()));
      },
      options);
  ASSERT_TRUE(routed.ok()) << routed.status().ToString();

  const LinearScan monolithic(num_windows());
  const std::span<const double> segment = Window(17);
  const double epsilon = 2.0;

  const std::vector<ObjectId> expected =
      monolithic.RangeQuery(PlainQuery(erp, segment), epsilon, nullptr);
  ASSERT_FALSE(expected.empty());

  QueryStats stats;
  std::vector<ObjectId> got = routed.value()->RangeQuery(
      CascadeQuery(erp, segment), epsilon, &stats);
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, expected);
  // The cascade was rebound to each probed cell's payload, so pruning —
  // with its ERP attribution — stays live under routing.
  EXPECT_GT(stats.lower_bound_pruned, 0);
  EXPECT_EQ(stats.lb_erp_pruned, stats.lower_bound_pruned);
}

TEST_F(CascadeRoutedTest, BoundCloneCollapsesScatteredMembersToOneRun) {
  Init(/*seed=*/100, /*num_seqs=*/4, /*seq_len=*/40, /*l=*/8);
  Rng rng(101);
  const std::vector<double> segment = RandomSeries(&rng, 8, 0.0, 10.0);
  const auto parent =
      LbCascade::MakeDtw(db_, *catalog_, segment, features_);

  // A routed-cell-like member set: every other window, ascending —
  // scattered, so the global catalog decomposes it into one run per
  // member rather than one per sequence.
  std::vector<ObjectId> members;
  for (ObjectId id = 0; id < num_windows(); id += 2) members.push_back(id);
  const auto count = static_cast<int32_t>(members.size());
  ASSERT_GT(count, 4);

  const auto payload = MakeWindowLbPayloads(db_, *catalog_, members);
  const auto bound = std::dynamic_pointer_cast<const LbCascade>(
      parent->BindTo(payload));
  ASSERT_NE(bound, nullptr);

  // The regression observable: the payload permutation makes the whole
  // block ONE memory-adjacent strided run, while the unbound cascade
  // over the full catalog still decomposes into one run per sequence.
  EXPECT_EQ(bound->AdjacentRuns(0, count), 1);
  EXPECT_EQ(parent->AdjacentRuns(0, num_windows()), 4);

  // And the permutation is value-invisible: the clone's bound for local
  // id i is bitwise the parent's bound for members[i].
  std::vector<double> local(static_cast<size_t>(count));
  bound->LowerBoundBlock(0, count, kInf, local.data());
  for (int32_t i = 0; i < count; ++i) {
    double global = 0.0;
    parent->LowerBoundBlock(members[static_cast<size_t>(i)], 1, kInf,
                            &global);
    ASSERT_BITEQ(local[static_cast<size_t>(i)], global);
  }
}

// ---------------------------------------------------------------------------
// Matcher pipeline: the knob is invisible in matches AND stats across
// threads, shards and routed cells.

struct CascadeRun {
  std::vector<SubsequenceMatch> matches;
  MatchQueryStats stats;
};

CascadeRun RunMatcher(const SequenceDatabase<double>& db,
                      const SequenceDistance<double>& dist,
                      const std::vector<double>& query, double epsilon,
                      bool prefilter, int32_t threads, int32_t shards,
                      int32_t cells) {
  MatcherOptions options;
  options.lambda = 8;
  options.lambda0 = 1;
  options.index_kind = IndexKind::kLinearScan;
  options.lb_prefilter = prefilter;
  options.exec.num_threads = threads;
  options.exec.num_shards = shards;
  options.exec.routing_cells = cells;
  auto matcher = SubsequenceMatcher<double>::Build(db, dist, options);
  EXPECT_TRUE(matcher.ok()) << matcher.status().message();
  CascadeRun run;
  auto result = matcher.value()->RangeSearch(query, epsilon, &run.stats);
  EXPECT_TRUE(result.ok()) << result.status().message();
  run.matches = std::move(result).ValueOrDie();
  return run;
}

void ExpectRunsEqual(const CascadeRun& run, const CascadeRun& reference) {
  ASSERT_EQ(run.matches.size(), reference.matches.size());
  for (size_t i = 0; i < run.matches.size(); ++i) {
    EXPECT_EQ(run.matches[i], reference.matches[i]);
    EXPECT_BITEQ(run.matches[i].distance, reference.matches[i].distance);
  }
  EXPECT_EQ(run.stats.segments, reference.stats.segments);
  EXPECT_EQ(run.stats.filter_computations,
            reference.stats.filter_computations);
  EXPECT_EQ(run.stats.hits, reference.stats.hits);
  EXPECT_EQ(run.stats.chains, reference.stats.chains);
  EXPECT_EQ(run.stats.verifications, reference.stats.verifications);
}

SequenceDatabase<double> CascadePipelineDb(Rng* rng) {
  SequenceDatabase<double> db;
  for (int s = 0; s < 6; ++s) {
    db.Add(Sequence<double>(RandomSeries(rng, 80)));
  }
  return db;
}

std::vector<double> CascadePipelineQuery(Rng* rng,
                                         const SequenceDatabase<double>& db) {
  // Stitched from database material so real matches exist.
  std::vector<double> query = RandomSeries(rng, 10);
  const std::span<const double> donor = db.at(1).view();
  query.insert(query.end(), donor.begin(), donor.begin() + 24);
  return query;
}

TEST(CascadeMatcherTest, DtwKnobInvisibleAcrossThreadsAndShards) {
  Rng rng(505);
  const SequenceDatabase<double> db = CascadePipelineDb(&rng);
  const std::vector<double> query = CascadePipelineQuery(&rng, db);
  const DtwDistance1D dtw;
  const double epsilon = 2.5;

  const CascadeRun reference =
      RunMatcher(db, dtw, query, epsilon, /*prefilter=*/false,
                 /*threads=*/1, /*shards=*/1, /*cells=*/0);
  ASSERT_FALSE(reference.matches.empty());
  for (const bool prefilter : {false, true}) {
    for (const int32_t threads : {1, 8}) {
      for (const int32_t shards : {1, 4}) {
        SCOPED_TRACE(::testing::Message()
                     << "prefilter=" << prefilter << " threads=" << threads
                     << " shards=" << shards);
        ExpectRunsEqual(RunMatcher(db, dtw, query, epsilon, prefilter,
                                   threads, shards, /*cells=*/0),
                        reference);
      }
    }
  }
}

TEST(CascadeMatcherTest, ErpKnobInvisibleAcrossThreadsAndRoutedCells) {
  // ERP is a metric, so the same pipeline also runs routed — where the
  // knob must stay invisible at FIXED cell count (routing itself is the
  // one sanctioned filter_computations change, so runs are compared
  // against a reference with the same cells).
  Rng rng(606);
  const SequenceDatabase<double> db = CascadePipelineDb(&rng);
  const std::vector<double> query = CascadePipelineQuery(&rng, db);
  const ErpDistance1D erp;
  const double epsilon = 2.5;

  for (const int32_t cells : {0, 4}) {
    const CascadeRun reference =
        RunMatcher(db, erp, query, epsilon, /*prefilter=*/false,
                   /*threads=*/1, /*shards=*/1, cells);
    ASSERT_FALSE(reference.matches.empty());
    for (const bool prefilter : {false, true}) {
      for (const int32_t threads : {1, 8}) {
        SCOPED_TRACE(::testing::Message()
                     << "cells=" << cells << " prefilter=" << prefilter
                     << " threads=" << threads);
        ExpectRunsEqual(RunMatcher(db, erp, query, epsilon, prefilter,
                                   threads, /*shards=*/1, cells),
                        reference);
      }
    }
  }
}

}  // namespace
}  // namespace subseq
