#include "subseq/distance/levenshtein.h"

#include <gtest/gtest.h>

#include <string_view>
#include <vector>

#include "subseq/core/rng.h"
#include "subseq/distance/alignment.h"

namespace subseq {
namespace {

std::vector<char> Str(std::string_view s) {
  return std::vector<char>(s.begin(), s.end());
}

TEST(LevenshteinTest, ClassicExamples) {
  LevenshteinDistance<char> d;
  EXPECT_DOUBLE_EQ(d.Compute(Str("kitten"), Str("sitting")), 3.0);
  EXPECT_DOUBLE_EQ(d.Compute(Str("flaw"), Str("lawn")), 2.0);
  EXPECT_DOUBLE_EQ(d.Compute(Str("intention"), Str("execution")), 5.0);
}

TEST(LevenshteinTest, EmptyAgainstString) {
  LevenshteinDistance<char> d;
  EXPECT_DOUBLE_EQ(d.Compute(Str(""), Str("abc")), 3.0);
  EXPECT_DOUBLE_EQ(d.Compute(Str("abc"), Str("")), 3.0);
  EXPECT_DOUBLE_EQ(d.Compute(Str(""), Str("")), 0.0);
}

TEST(LevenshteinTest, IdenticalAtZero) {
  LevenshteinDistance<char> d;
  EXPECT_DOUBLE_EQ(d.Compute(Str("PROTEIN"), Str("PROTEIN")), 0.0);
}

TEST(LevenshteinTest, BoundedByLongerLength) {
  LevenshteinDistance<char> d;
  Rng rng(61);
  const std::string_view alphabet = "ACGT";
  for (int trial = 0; trial < 30; ++trial) {
    std::vector<char> a;
    std::vector<char> b;
    const size_t na = 1 + rng.NextBounded(12);
    const size_t nb = 1 + rng.NextBounded(12);
    for (size_t i = 0; i < na; ++i) {
      a.push_back(alphabet[rng.NextBounded(4)]);
    }
    for (size_t i = 0; i < nb; ++i) {
      b.push_back(alphabet[rng.NextBounded(4)]);
    }
    const double dist = d.Compute(a, b);
    EXPECT_LE(dist, static_cast<double>(std::max(na, nb)));
    EXPECT_GE(dist, static_cast<double>(na > nb ? na - nb : nb - na));
  }
}

TEST(LevenshteinTest, BoundedShortCircuitsOnLengthGap) {
  LevenshteinDistance<char> d;
  EXPECT_GT(d.ComputeBounded(Str("AAAAAAAAAA"), Str("A"), 3.0), 3.0);
}

TEST(LevenshteinTest, BoundedExactWithinBound) {
  LevenshteinDistance<char> d;
  EXPECT_DOUBLE_EQ(d.ComputeBounded(Str("kitten"), Str("sitting"), 3.0),
                   3.0);
  EXPECT_GT(d.ComputeBounded(Str("kitten"), Str("sitting"), 2.0), 2.0);
}

TEST(LevenshteinTest, EditScriptMatchesDistance) {
  LevenshteinDistance<char> d;
  const auto a = Str("kitten");
  const auto b = Str("sitting");
  const Alignment al = d.ComputeWithPath(a, b);
  EXPECT_DOUBLE_EQ(al.distance, 3.0);
  double sum = 0.0;
  for (const Coupling& c : al.couplings) sum += c.cost;
  EXPECT_DOUBLE_EQ(sum, 3.0);
  const auto err = ValidateAlignment(al, 6, 7, /*allow_gaps=*/true);
  EXPECT_FALSE(err.has_value()) << *err;
}

TEST(LevenshteinTest, EditScriptOnRandomPairs) {
  LevenshteinDistance<char> d;
  Rng rng(67);
  const std::string_view alphabet = "ACGT";
  for (int trial = 0; trial < 25; ++trial) {
    std::vector<char> a;
    std::vector<char> b;
    const int na = 1 + static_cast<int>(rng.NextBounded(10));
    const int nb = 1 + static_cast<int>(rng.NextBounded(10));
    for (int i = 0; i < na; ++i) a.push_back(alphabet[rng.NextBounded(4)]);
    for (int i = 0; i < nb; ++i) b.push_back(alphabet[rng.NextBounded(4)]);
    const Alignment al = d.ComputeWithPath(a, b);
    EXPECT_DOUBLE_EQ(al.distance, d.Compute(a, b));
    const auto err = ValidateAlignment(al, na, nb, /*allow_gaps=*/true);
    EXPECT_FALSE(err.has_value()) << *err;
  }
}

TEST(LevenshteinTest, TriangleInequalityOnRandomTriples) {
  LevenshteinDistance<char> d;
  Rng rng(71);
  const std::string_view alphabet = "AC";
  auto make = [&]() {
    std::vector<char> v;
    const int n = 1 + static_cast<int>(rng.NextBounded(8));
    for (int i = 0; i < n; ++i) v.push_back(alphabet[rng.NextBounded(2)]);
    return v;
  };
  for (int trial = 0; trial < 60; ++trial) {
    const auto x = make();
    const auto y = make();
    const auto z = make();
    EXPECT_LE(d.Compute(x, z), d.Compute(x, y) + d.Compute(y, z));
  }
}

TEST(LevenshteinTest, WorksOnDoubles) {
  LevenshteinDistance<double> d;
  const std::vector<double> a = {1.0, 2.0, 3.0};
  const std::vector<double> b = {1.0, 3.0};
  EXPECT_DOUBLE_EQ(d.Compute(a, b), 1.0);
}

TEST(LevenshteinTest, PropertyFlags) {
  LevenshteinDistance<char> d;
  EXPECT_TRUE(d.is_metric());
  EXPECT_TRUE(d.is_consistent());
  EXPECT_EQ(d.name(), "levenshtein");
}

}  // namespace
}  // namespace subseq
