#include "subseq/distance/euclidean.h"

#include <gtest/gtest.h>

#include <vector>

namespace subseq {
namespace {

TEST(EuclideanTest, KnownValue1D) {
  EuclideanDistance1D d;
  const std::vector<double> a = {0.0, 0.0, 0.0};
  const std::vector<double> b = {3.0, 4.0, 0.0};
  EXPECT_DOUBLE_EQ(d.Compute(a, b), 5.0);
}

TEST(EuclideanTest, IdenticalSequencesAreAtZero) {
  EuclideanDistance1D d;
  const std::vector<double> a = {1.5, -2.0, 7.0};
  EXPECT_DOUBLE_EQ(d.Compute(a, a), 0.0);
}

TEST(EuclideanTest, LengthMismatchIsInfinite) {
  EuclideanDistance1D d;
  const std::vector<double> a = {1.0, 2.0};
  const std::vector<double> b = {1.0, 2.0, 3.0};
  EXPECT_EQ(d.Compute(a, b), kInfiniteDistance);
}

TEST(EuclideanTest, EmptySequences) {
  EuclideanDistance1D d;
  const std::vector<double> empty;
  EXPECT_DOUBLE_EQ(d.Compute(empty, empty), 0.0);
}

TEST(EuclideanTest, KnownValue2D) {
  EuclideanDistance2D d;
  const std::vector<Point2d> a = {{0.0, 0.0}, {1.0, 1.0}};
  const std::vector<Point2d> b = {{3.0, 4.0}, {1.0, 1.0}};
  EXPECT_DOUBLE_EQ(d.Compute(a, b), 5.0);
}

TEST(EuclideanTest, BoundedExactWithinBound) {
  EuclideanDistance1D d;
  const std::vector<double> a = {0.0, 0.0};
  const std::vector<double> b = {3.0, 4.0};
  EXPECT_DOUBLE_EQ(d.ComputeBounded(a, b, 5.0), 5.0);
  EXPECT_DOUBLE_EQ(d.ComputeBounded(a, b, 100.0), 5.0);
}

TEST(EuclideanTest, BoundedAbandonsAboveBound) {
  EuclideanDistance1D d;
  const std::vector<double> a = {0.0, 0.0};
  const std::vector<double> b = {3.0, 4.0};
  EXPECT_GT(d.ComputeBounded(a, b, 4.9), 4.9);
}

TEST(EuclideanTest, PropertyFlags) {
  EuclideanDistance1D d;
  EXPECT_TRUE(d.is_metric());
  EXPECT_TRUE(d.is_consistent());
  EXPECT_EQ(d.name(), "euclidean");
}

TEST(EuclideanTest, PrefixDistanceNeverExceedsFull) {
  // The consistency argument for Euclidean: aligned subsequences sum a
  // subset of the squared terms.
  EuclideanDistance1D d;
  const std::vector<double> a = {1.0, 5.0, 2.0, 8.0, 3.0};
  const std::vector<double> b = {2.0, 3.0, 4.0, 4.0, 9.0};
  const double full = d.Compute(a, b);
  for (size_t len = 1; len <= a.size(); ++len) {
    for (size_t off = 0; off + len <= a.size(); ++off) {
      const double sub = d.Compute(
          std::span<const double>(a).subspan(off, len),
          std::span<const double>(b).subspan(off, len));
      EXPECT_LE(sub, full + 1e-12);
    }
  }
}

}  // namespace
}  // namespace subseq
