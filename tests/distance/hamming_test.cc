#include "subseq/distance/hamming.h"

#include <gtest/gtest.h>

#include <string_view>
#include <vector>

namespace subseq {
namespace {

std::vector<char> Str(std::string_view s) {
  return std::vector<char>(s.begin(), s.end());
}

TEST(HammingTest, KnownValues) {
  HammingDistance<char> d;
  EXPECT_DOUBLE_EQ(d.Compute(Str("ACGT"), Str("ACGT")), 0.0);
  EXPECT_DOUBLE_EQ(d.Compute(Str("ACGT"), Str("ACGA")), 1.0);
  EXPECT_DOUBLE_EQ(d.Compute(Str("AAAA"), Str("TTTT")), 4.0);
  EXPECT_DOUBLE_EQ(d.Compute(Str("karolin"), Str("kathrin")), 3.0);
}

TEST(HammingTest, LengthMismatchIsInfinite) {
  HammingDistance<char> d;
  EXPECT_EQ(d.Compute(Str("AC"), Str("ACG")), kInfiniteDistance);
}

TEST(HammingTest, EmptySequencesAtZero) {
  HammingDistance<char> d;
  EXPECT_DOUBLE_EQ(d.Compute(Str(""), Str("")), 0.0);
}

TEST(HammingTest, BoundedAbandons) {
  HammingDistance<char> d;
  EXPECT_GT(d.ComputeBounded(Str("AAAA"), Str("TTTT"), 2.0), 2.0);
  EXPECT_DOUBLE_EQ(d.ComputeBounded(Str("AAAA"), Str("TTTA"), 3.0), 3.0);
}

TEST(HammingTest, WorksOnDoubles) {
  HammingDistance<double> d;
  const std::vector<double> a = {1.0, 2.0, 3.0};
  const std::vector<double> b = {1.0, 9.0, 3.0};
  EXPECT_DOUBLE_EQ(d.Compute(a, b), 1.0);
}

TEST(HammingTest, PropertyFlags) {
  HammingDistance<char> d;
  EXPECT_TRUE(d.is_metric());
  EXPECT_TRUE(d.is_consistent());
  EXPECT_EQ(d.name(), "hamming");
}

TEST(HammingTest, AlignedSubsequenceNeverExceedsFull) {
  HammingDistance<char> d;
  const auto a = Str("AACCGGTTAC");
  const auto b = Str("ATCCGATTCC");
  const double full = d.Compute(a, b);
  for (size_t len = 1; len <= a.size(); ++len) {
    for (size_t off = 0; off + len <= a.size(); ++off) {
      const double sub =
          d.Compute(std::span<const char>(a).subspan(off, len),
                    std::span<const char>(b).subspan(off, len));
      EXPECT_LE(sub, full);
    }
  }
}

}  // namespace
}  // namespace subseq
