#include "subseq/distance/erp.h"

#include <gtest/gtest.h>

#include <vector>

#include "subseq/core/rng.h"
#include "subseq/distance/alignment.h"

namespace subseq {
namespace {

TEST(ErpTest, IdenticalSequencesAtZero) {
  ErpDistance1D d;
  const std::vector<double> a = {1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(d.Compute(a, a), 0.0);
}

TEST(ErpTest, EmptyAgainstSequenceSumsGapCosts) {
  // ERP charges unmatched elements their distance to the gap element (0).
  ErpDistance1D d;
  const std::vector<double> a = {1.0, -2.0, 3.0};
  const std::vector<double> empty;
  EXPECT_DOUBLE_EQ(d.Compute(a, empty), 6.0);
  EXPECT_DOUBLE_EQ(d.Compute(empty, a), 6.0);
  EXPECT_DOUBLE_EQ(d.Compute(empty, empty), 0.0);
}

TEST(ErpTest, KnownValueWithGap) {
  // (1,2,3) vs (1,3): cheapest alignment matches 1~1, 3~3 and gaps the 2,
  // costing |2 - 0| = 2.
  ErpDistance1D d;
  const std::vector<double> a = {1.0, 2.0, 3.0};
  const std::vector<double> b = {1.0, 3.0};
  EXPECT_DOUBLE_EQ(d.Compute(a, b), 2.0);
}

TEST(ErpTest, PrefersSubstitutionWhenCheaper) {
  const std::vector<double> a = {5.0, 5.1};
  const std::vector<double> b = {5.0, 5.0};
  ErpDistance1D d;
  EXPECT_NEAR(d.Compute(a, b), 0.1, 1e-12);
}

TEST(ErpTest, SymmetricOnRandomInputs) {
  ErpDistance1D d;
  Rng rng(31);
  for (int trial = 0; trial < 25; ++trial) {
    std::vector<double> a;
    std::vector<double> b;
    const int na = 1 + static_cast<int>(rng.NextBounded(9));
    const int nb = 1 + static_cast<int>(rng.NextBounded(9));
    for (int i = 0; i < na; ++i) a.push_back(rng.NextDouble(-3, 3));
    for (int i = 0; i < nb; ++i) b.push_back(rng.NextDouble(-3, 3));
    EXPECT_DOUBLE_EQ(d.Compute(a, b), d.Compute(b, a));
  }
}

TEST(ErpTest, TriangleInequalityOnRandomTriples) {
  ErpDistance1D d;
  Rng rng(37);
  for (int trial = 0; trial < 50; ++trial) {
    auto make = [&rng]() {
      std::vector<double> v;
      const int n = 1 + static_cast<int>(rng.NextBounded(7));
      for (int i = 0; i < n; ++i) v.push_back(rng.NextDouble(-2, 2));
      return v;
    };
    const auto x = make();
    const auto y = make();
    const auto z = make();
    EXPECT_LE(d.Compute(x, z),
              d.Compute(x, y) + d.Compute(y, z) + 1e-9);
  }
}

TEST(ErpTest, BoundedAbandonsAndMatches) {
  ErpDistance1D d;
  const std::vector<double> a = {10.0, 10.0, 10.0};
  const std::vector<double> b = {0.5, 0.5, 0.5};
  EXPECT_GT(d.ComputeBounded(a, b, 5.0), 5.0);
  EXPECT_DOUBLE_EQ(d.ComputeBounded(a, b, 1e9), d.Compute(a, b));
}

TEST(ErpTest, PathCostMatchesDistance) {
  ErpDistance1D d;
  Rng rng(41);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<double> a;
    std::vector<double> b;
    const int na = 1 + static_cast<int>(rng.NextBounded(8));
    const int nb = 1 + static_cast<int>(rng.NextBounded(8));
    for (int i = 0; i < na; ++i) a.push_back(rng.NextDouble(0, 4));
    for (int i = 0; i < nb; ++i) b.push_back(rng.NextDouble(0, 4));
    const Alignment al = d.ComputeWithPath(a, b);
    EXPECT_DOUBLE_EQ(al.distance, d.Compute(a, b));
    double sum = 0.0;
    for (const Coupling& c : al.couplings) sum += c.cost;
    EXPECT_NEAR(sum, al.distance, 1e-9);
    const auto err = ValidateAlignment(al, na, nb, /*allow_gaps=*/true);
    EXPECT_FALSE(err.has_value()) << *err;
  }
}

TEST(ErpTest, GapElementIsOriginIn2D) {
  ErpDistance2D d;
  const std::vector<Point2d> a = {{3.0, 4.0}};
  const std::vector<Point2d> empty;
  EXPECT_DOUBLE_EQ(d.Compute(a, empty), 5.0);
}

TEST(ErpTest, PropertyFlags) {
  ErpDistance1D d;
  EXPECT_TRUE(d.is_metric());
  EXPECT_TRUE(d.is_consistent());
  EXPECT_EQ(d.name(), "erp");
}

}  // namespace
}  // namespace subseq
