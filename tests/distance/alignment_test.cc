#include "subseq/distance/alignment.h"

#include <gtest/gtest.h>

#include <vector>

#include "subseq/distance/dtw.h"
#include "subseq/distance/erp.h"
#include "subseq/distance/frechet.h"
#include "subseq/distance/levenshtein.h"

namespace subseq {
namespace {

Alignment Diagonal(int32_t n, double cost_each = 0.0) {
  Alignment al;
  for (int32_t i = 0; i < n; ++i) {
    al.couplings.push_back(Coupling{i, i, AlignOp::kMatch, cost_each});
    al.distance += cost_each;
  }
  return al;
}

TEST(ValidateAlignmentTest, AcceptsDiagonal) {
  const Alignment al = Diagonal(4);
  EXPECT_FALSE(ValidateAlignment(al, 4, 4, false).has_value());
}

TEST(ValidateAlignmentTest, RejectsEmptyForNonEmptyInputs) {
  Alignment al;
  EXPECT_TRUE(ValidateAlignment(al, 3, 3, false).has_value());
}

TEST(ValidateAlignmentTest, RejectsWrongBoundary) {
  Alignment al = Diagonal(3);
  al.couplings.erase(al.couplings.begin());  // now starts at (1, 1)
  EXPECT_TRUE(ValidateAlignment(al, 3, 3, false).has_value());
}

TEST(ValidateAlignmentTest, RejectsNonMonotone) {
  Alignment al;
  al.couplings.push_back(Coupling{0, 0, AlignOp::kMatch, 0});
  al.couplings.push_back(Coupling{1, 1, AlignOp::kMatch, 0});
  al.couplings.push_back(Coupling{1, 0, AlignOp::kMatch, 0});
  al.couplings.push_back(Coupling{2, 2, AlignOp::kMatch, 0});
  EXPECT_TRUE(ValidateAlignment(al, 3, 3, false).has_value());
}

TEST(ValidateAlignmentTest, RejectsDiscontinuity) {
  Alignment al;
  al.couplings.push_back(Coupling{0, 0, AlignOp::kMatch, 0});
  al.couplings.push_back(Coupling{2, 2, AlignOp::kMatch, 0});  // skips 1
  EXPECT_TRUE(ValidateAlignment(al, 3, 3, false).has_value());
}

TEST(ValidateAlignmentTest, RejectsUncoveredElement) {
  Alignment al;
  al.couplings.push_back(Coupling{0, 0, AlignOp::kMatch, 0});
  al.couplings.push_back(Coupling{1, 0, AlignOp::kMatch, 0});
  al.couplings.push_back(Coupling{2, 2, AlignOp::kMatch, 0});
  // b[1] never coupled; also discontinuous.
  EXPECT_TRUE(ValidateAlignment(al, 3, 3, false).has_value());
}

TEST(ValidateAlignmentTest, RejectsGapsWhenNotAllowed) {
  Alignment al = Diagonal(3);
  al.couplings.insert(al.couplings.begin() + 1,
                      Coupling{1, 0, AlignOp::kGapA, 1.0});
  EXPECT_TRUE(ValidateAlignment(al, 3, 3, false).has_value());
}

TEST(RestrictToRangeTest, DiagonalMapsIdentically) {
  const Alignment al = Diagonal(5);
  const auto iv = RestrictToRange(al, Interval{1, 4});
  ASSERT_TRUE(iv.has_value());
  EXPECT_EQ(*iv, (Interval{1, 4}));
}

TEST(RestrictToRangeTest, WarpedPathWidensRange) {
  // a[0] matches b[0], b[1], b[2]; a[1] matches b[3].
  Alignment al;
  al.couplings.push_back(Coupling{0, 0, AlignOp::kMatch, 0});
  al.couplings.push_back(Coupling{0, 1, AlignOp::kMatch, 0});
  al.couplings.push_back(Coupling{0, 2, AlignOp::kMatch, 0});
  al.couplings.push_back(Coupling{1, 3, AlignOp::kMatch, 0});
  const auto iv = RestrictToRange(al, Interval{0, 1});
  ASSERT_TRUE(iv.has_value());
  EXPECT_EQ(*iv, (Interval{0, 3}));
}

TEST(RestrictToRangeTest, NoMatchInRangeReturnsNullopt) {
  Alignment al;
  al.couplings.push_back(Coupling{0, 0, AlignOp::kGapA, 1.0});
  al.couplings.push_back(Coupling{1, 0, AlignOp::kMatch, 0.0});
  EXPECT_FALSE(RestrictToRange(al, Interval{0, 1}).has_value());
  EXPECT_TRUE(RestrictToRange(al, Interval{1, 2}).has_value());
}

TEST(RestrictedCostTest, SumsOnlyInRangeCouplings) {
  Alignment al;
  al.couplings.push_back(Coupling{0, 0, AlignOp::kMatch, 1.0});
  al.couplings.push_back(Coupling{1, 1, AlignOp::kMatch, 2.0});
  al.couplings.push_back(Coupling{2, 2, AlignOp::kMatch, 4.0});
  EXPECT_DOUBLE_EQ(RestrictedCost(al, Interval{1, 3}), 6.0);
  EXPECT_DOUBLE_EQ(RestrictedCost(al, Interval{0, 1}), 1.0);
  EXPECT_DOUBLE_EQ(RestrictedMaxCost(al, Interval{0, 2}), 2.0);
}

TEST(RestrictedCostTest, GapBCouplingsExcluded) {
  Alignment al;
  al.couplings.push_back(Coupling{0, 0, AlignOp::kMatch, 1.0});
  al.couplings.push_back(Coupling{0, 1, AlignOp::kGapB, 5.0});
  al.couplings.push_back(Coupling{1, 2, AlignOp::kMatch, 2.0});
  // The gap-B coupling consumes b only; it has no a-index in [0, 2).
  EXPECT_DOUBLE_EQ(RestrictedCost(al, Interval{0, 2}), 3.0);
}

// The Section 4 theorem, checked through real optimal alignments: for every
// interval of a, the restricted cost bounds the induced subsequence pair's
// distance, and the restricted cost never exceeds the full distance.
TEST(ConsistencyConstructionTest, ErpRestrictedCostBoundsSubDistance) {
  ErpDistance1D d;
  const std::vector<double> a = {1, 4, 2, 8, 5, 7};
  const std::vector<double> b = {1, 2, 9, 5, 6};
  const Alignment al = d.ComputeWithPath(a, b);
  for (int32_t begin = 0; begin < 6; ++begin) {
    for (int32_t end = begin + 1; end <= 6; ++end) {
      const Interval ia{begin, end};
      const double restricted = RestrictedCost(al, ia);
      EXPECT_LE(restricted, al.distance + 1e-9);
      const auto ib = RestrictToRange(al, ia);
      if (!ib.has_value()) continue;
      const double sub = d.Compute(
          std::span<const double>(a).subspan(
              static_cast<size_t>(begin), static_cast<size_t>(end - begin)),
          std::span<const double>(b).subspan(
              static_cast<size_t>(ib->begin),
              static_cast<size_t>(ib->length())));
      EXPECT_LE(sub, al.distance + 1e-9);
    }
  }
}

TEST(ConsistencyConstructionTest, FrechetRestrictedMaxBoundsSubDistance) {
  FrechetDistance1D d;
  const std::vector<double> a = {1, 4, 2, 8, 5};
  const std::vector<double> b = {2, 3, 7, 6, 5, 4};
  const Alignment al = d.ComputeWithPath(a, b);
  for (int32_t begin = 0; begin < 5; ++begin) {
    for (int32_t end = begin + 1; end <= 5; ++end) {
      const Interval ia{begin, end};
      EXPECT_LE(RestrictedMaxCost(al, ia), al.distance + 1e-9);
      const auto ib = RestrictToRange(al, ia);
      ASSERT_TRUE(ib.has_value());
      const double sub = d.Compute(
          std::span<const double>(a).subspan(
              static_cast<size_t>(begin), static_cast<size_t>(end - begin)),
          std::span<const double>(b).subspan(
              static_cast<size_t>(ib->begin),
              static_cast<size_t>(ib->length())));
      EXPECT_LE(sub, al.distance + 1e-9);
    }
  }
}

}  // namespace
}  // namespace subseq
