// LB_Keogh properties: admissibility against banded and unconstrained
// DTW (the soundness the step-4 prefilter rests on), batched/scalar
// consistency of LowerBoundMany, and the full-band envelope fast path.

#include "subseq/distance/lb_keogh.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

#include "subseq/core/rng.h"
#include "subseq/distance/dtw.h"
#include "testing/helpers.h"

namespace subseq {
namespace {

using ::subseq::testing::RandomSeries;

uint64_t Bits(double x) {
  uint64_t u;
  std::memcpy(&u, &x, sizeof(u));
  return u;
}

TEST(LbKeoghTest, AdmissibleAgainstBandedDtw) {
  Rng rng(31);
  for (int iter = 0; iter < 60; ++iter) {
    const int32_t n = static_cast<int32_t>(rng.NextInt(1, 64));
    const std::vector<double> q = RandomSeries(&rng, n);
    const std::vector<double> c = RandomSeries(&rng, n);
    for (const int32_t band : {0, 1, 3, n - 1, -1}) {
      const LbKeoghEnvelope env(q, band);
      const DtwDistance1D dtw(band);
      const double lb = env.LowerBound(c);
      const double d = dtw.Compute(q, c);
      // LB(c) <= DTW_band(q, c); tiny slack for summation rounding.
      EXPECT_LE(lb, d + 1e-9 * (1.0 + d))
          << "band=" << band << " n=" << n;
    }
  }
}

TEST(LbKeoghTest, LengthMismatchIsTriviallyZero) {
  Rng rng(32);
  const std::vector<double> q = RandomSeries(&rng, 16);
  const std::vector<double> c = RandomSeries(&rng, 17);
  const LbKeoghEnvelope env(q, -1);
  EXPECT_EQ(env.LowerBound(c), 0.0);
  EXPECT_EQ(env.LowerBoundAbandoning(c, 0.5), 0.0);
}

TEST(LbKeoghTest, AbandoningFollowsContract) {
  Rng rng(33);
  for (int iter = 0; iter < 60; ++iter) {
    const int32_t n = static_cast<int32_t>(rng.NextInt(1, 128));
    const std::vector<double> q = RandomSeries(&rng, n);
    const std::vector<double> c =
        rng.NextBool(0.5) ? RandomSeries(&rng, n)
                          : RandomSeries(&rng, n, 15.0, 30.0);
    const LbKeoghEnvelope env(q, -1);
    const double exact = env.LowerBound(c);
    const double cutoff = rng.NextDouble(0.0, 20.0);
    const double abandoned = env.LowerBoundAbandoning(c, cutoff);
    if (exact <= cutoff) {
      EXPECT_EQ(Bits(abandoned), Bits(exact));
    } else {
      EXPECT_GT(abandoned, cutoff);
    }
  }
}

TEST(LbKeoghTest, LowerBoundManyConsistentWithScalar) {
  Rng rng(34);
  for (int iter = 0; iter < 20; ++iter) {
    const int32_t n = static_cast<int32_t>(rng.NextInt(1, 96));
    const std::vector<double> q = RandomSeries(&rng, n);
    const LbKeoghEnvelope env(q, -1);
    // Contiguous strided candidate block, the window-catalog layout;
    // stride > n exercises non-dense packing too.
    const size_t stride =
        static_cast<size_t>(n) + static_cast<size_t>(rng.NextInt(0, 3));
    const int32_t count = static_cast<int32_t>(rng.NextInt(1, 23));
    const std::vector<double> block =
        RandomSeries(&rng, static_cast<int32_t>(stride) * count, 0.0, 18.0);
    const double cutoff = rng.NextDouble(0.0, 25.0);

    std::vector<double> many(static_cast<size_t>(count));
    env.LowerBoundMany(block.data(), stride, count, cutoff, many.data());
    for (int32_t k = 0; k < count; ++k) {
      const std::span<const double> cand(
          block.data() + static_cast<size_t>(k) * stride,
          static_cast<size_t>(n));
      const double exact = env.LowerBound(cand);
      // Decision always agrees with the exact bound; value is exact
      // (bitwise, shared with LowerBoundAbandoning) when not pruned.
      EXPECT_EQ(many[static_cast<size_t>(k)] > cutoff, exact > cutoff);
      if (exact <= cutoff) {
        EXPECT_EQ(Bits(many[static_cast<size_t>(k)]), Bits(exact));
        EXPECT_EQ(Bits(many[static_cast<size_t>(k)]),
                  Bits(env.LowerBoundAbandoning(cand, cutoff)));
      }
    }

    // Decision invariance under regrouping: splitting the same block
    // into two LowerBoundMany calls at any point changes no decision.
    if (count > 1) {
      const int32_t split = static_cast<int32_t>(rng.NextInt(1, count - 1));
      std::vector<double> split_out(static_cast<size_t>(count));
      env.LowerBoundMany(block.data(), stride, split, cutoff,
                         split_out.data());
      env.LowerBoundMany(block.data() + static_cast<size_t>(split) * stride,
                         stride, count - split, cutoff,
                         split_out.data() + split);
      for (int32_t k = 0; k < count; ++k) {
        EXPECT_EQ(split_out[static_cast<size_t>(k)] > cutoff,
                  many[static_cast<size_t>(k)] > cutoff);
        if (many[static_cast<size_t>(k)] <= cutoff) {
          EXPECT_EQ(Bits(split_out[static_cast<size_t>(k)]),
                    Bits(many[static_cast<size_t>(k)]));
        }
      }
    }
  }
}

TEST(LbKeoghTest, FullBandFastPathMatchesWindowedLoop) {
  Rng rng(35);
  for (const int32_t n : {1, 2, 3, 7, 16, 33, 100}) {
    const std::vector<double> q = RandomSeries(&rng, n, -4.0, 4.0);
    // band = -1 and band = n - 1 both take the O(n) global-extremes
    // path; band = n would be clamped to n - 1 too. Compare against a
    // band that forces the O(n^2) windowed loop yet spans everything.
    const LbKeoghEnvelope fast(q, -1);
    ASSERT_EQ(fast.band(), n - 1);
    std::vector<double> naive_u(static_cast<size_t>(n));
    std::vector<double> naive_l(static_cast<size_t>(n));
    for (int32_t i = 0; i < n; ++i) {
      double u = q[0], l = q[0];
      for (int32_t j = 1; j < n; ++j) {
        u = std::max(u, q[static_cast<size_t>(j)]);
        l = std::min(l, q[static_cast<size_t>(j)]);
      }
      naive_u[static_cast<size_t>(i)] = u;
      naive_l[static_cast<size_t>(i)] = l;
    }
    for (int32_t i = 0; i < n; ++i) {
      EXPECT_EQ(Bits(fast.upper()[static_cast<size_t>(i)]),
                Bits(naive_u[static_cast<size_t>(i)]));
      EXPECT_EQ(Bits(fast.lower()[static_cast<size_t>(i)]),
                Bits(naive_l[static_cast<size_t>(i)]));
    }
  }
}

}  // namespace
}  // namespace subseq
