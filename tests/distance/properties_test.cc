// Parameterized property sweeps across all shipped distances: the metric
// axioms (when advertised) and the paper's consistency property
// (Definition 1), verified empirically by exhaustive subsequence search on
// random inputs.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "subseq/core/rng.h"
#include "subseq/core/types.h"
#include "subseq/distance/consistency.h"
#include "subseq/distance/registry.h"
#include "testing/helpers.h"

namespace subseq {
namespace {

using ::subseq::testing::RandomSeries;
using ::subseq::testing::RandomString;
using ::subseq::testing::RandomTrack;

// ---------------------------------------------------------------------------
// Scalar time-series distances.

class ScalarDistanceProperties
    : public ::testing::TestWithParam<std::tuple<std::string, uint64_t>> {
 protected:
  std::unique_ptr<SequenceDistance<double>> MakeDistance() {
    auto result = MakeScalarDistance(std::get<0>(GetParam()));
    EXPECT_TRUE(result.ok());
    return std::move(result).ValueOrDie();
  }
  uint64_t seed() const { return std::get<1>(GetParam()); }
};

TEST_P(ScalarDistanceProperties, MetricAxiomsWhenAdvertised) {
  const auto dist = MakeDistance();
  if (!dist->is_metric()) GTEST_SKIP() << "distance is not metric";
  Rng rng(seed());
  std::vector<std::vector<double>> samples;
  for (int i = 0; i < 10; ++i) {
    samples.push_back(
        RandomSeries(&rng, 3 + static_cast<int32_t>(rng.NextBounded(5))));
  }
  // Rigid distances need equal lengths to produce finite values; include
  // a same-length batch as well.
  for (int i = 0; i < 6; ++i) samples.push_back(RandomSeries(&rng, 5));
  const auto violation = CheckMetricAxioms(*dist, samples);
  EXPECT_FALSE(violation.has_value()) << *violation;
}

TEST_P(ScalarDistanceProperties, ConsistencyWhenAdvertised) {
  const auto dist = MakeDistance();
  if (!dist->is_consistent()) {
    GTEST_SKIP() << "distance is not consistent";
  }
  Rng rng(seed() + 1000);
  for (int trial = 0; trial < 6; ++trial) {
    const auto q = RandomSeries(&rng, 6, 0.0, 4.0);
    const auto x = RandomSeries(&rng, 6, 0.0, 4.0);
    const auto violation = FindConsistencyViolation<double>(*dist, q, x, 1);
    EXPECT_FALSE(violation.has_value())
        << dist->name() << ": subsequence [" << violation->sx.begin << ", "
        << violation->sx.end << ") best=" << violation->best_subseq
        << " full=" << violation->full;
  }
}

TEST_P(ScalarDistanceProperties, SelfDistanceIsZero) {
  const auto dist = MakeDistance();
  Rng rng(seed() + 2000);
  for (int trial = 0; trial < 10; ++trial) {
    const auto a = RandomSeries(&rng, 1 + static_cast<int32_t>(
                                          rng.NextBounded(10)));
    EXPECT_DOUBLE_EQ(dist->Compute(a, a), 0.0);
  }
}

TEST_P(ScalarDistanceProperties, BoundedAgreesWithExactWithinBound) {
  const auto dist = MakeDistance();
  Rng rng(seed() + 3000);
  for (int trial = 0; trial < 20; ++trial) {
    const int n = 4 + static_cast<int>(rng.NextBounded(5));
    const auto a = RandomSeries(&rng, n, 0.0, 3.0);
    const auto b = RandomSeries(&rng, n, 0.0, 3.0);
    const double exact = dist->Compute(a, b);
    const double bounded = dist->ComputeBounded(a, b, exact);
    EXPECT_DOUBLE_EQ(bounded, exact);
    const double abandoned = dist->ComputeBounded(a, b, exact / 2.0 - 1e-9);
    if (exact > 0.0) EXPECT_GT(abandoned, exact / 2.0 - 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllScalarDistances, ScalarDistanceProperties,
    ::testing::Combine(::testing::Values("erp", "frechet", "dtw",
                                         "euclidean", "l1", "linf",
                                         "levenshtein", "hamming"),
                       ::testing::Values(101, 202, 303)),
    [](const auto& info) {
      return std::get<0>(info.param) + "_seed" +
             std::to_string(std::get<1>(info.param));
    });

// ---------------------------------------------------------------------------
// String distances.

class StringDistanceProperties
    : public ::testing::TestWithParam<std::tuple<std::string, uint64_t>> {
 protected:
  std::unique_ptr<SequenceDistance<char>> MakeDistance() {
    auto result = MakeStringDistance(std::get<0>(GetParam()));
    EXPECT_TRUE(result.ok());
    return std::move(result).ValueOrDie();
  }
  uint64_t seed() const { return std::get<1>(GetParam()); }
};

TEST_P(StringDistanceProperties, MetricAxioms) {
  const auto dist = MakeDistance();
  ASSERT_TRUE(dist->is_metric());
  Rng rng(seed());
  std::vector<std::vector<char>> samples;
  for (int i = 0; i < 8; ++i) {
    samples.push_back(
        RandomString(&rng, 3 + static_cast<int32_t>(rng.NextBounded(6))));
  }
  for (int i = 0; i < 6; ++i) samples.push_back(RandomString(&rng, 5));
  const auto violation = CheckMetricAxioms(*dist, samples);
  EXPECT_FALSE(violation.has_value()) << *violation;
}

TEST_P(StringDistanceProperties, Consistency) {
  const auto dist = MakeDistance();
  ASSERT_TRUE(dist->is_consistent());
  Rng rng(seed() + 500);
  for (int trial = 0; trial < 6; ++trial) {
    const auto q = RandomString(&rng, 7);
    const auto x = RandomString(&rng, 7);
    const auto violation = FindConsistencyViolation<char>(*dist, q, x, 1);
    EXPECT_FALSE(violation.has_value())
        << dist->name() << " violated consistency";
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllStringDistances, StringDistanceProperties,
    ::testing::Combine(::testing::Values("levenshtein", "hamming"),
                       ::testing::Values(11, 22, 33)),
    [](const auto& info) {
      return std::get<0>(info.param) + "_seed" +
             std::to_string(std::get<1>(info.param));
    });

// ---------------------------------------------------------------------------
// Trajectory distances.

class TrajectoryDistanceProperties
    : public ::testing::TestWithParam<std::tuple<std::string, uint64_t>> {
 protected:
  std::unique_ptr<SequenceDistance<Point2d>> MakeDistance() {
    auto result = MakeTrajectoryDistance(std::get<0>(GetParam()));
    EXPECT_TRUE(result.ok());
    return std::move(result).ValueOrDie();
  }
  uint64_t seed() const { return std::get<1>(GetParam()); }
};

TEST_P(TrajectoryDistanceProperties, MetricAxiomsWhenAdvertised) {
  const auto dist = MakeDistance();
  if (!dist->is_metric()) GTEST_SKIP();
  Rng rng(seed());
  std::vector<std::vector<Point2d>> samples;
  for (int i = 0; i < 8; ++i) {
    samples.push_back(
        RandomTrack(&rng, 3 + static_cast<int32_t>(rng.NextBounded(4))));
  }
  for (int i = 0; i < 5; ++i) samples.push_back(RandomTrack(&rng, 4));
  const auto violation = CheckMetricAxioms(*dist, samples);
  EXPECT_FALSE(violation.has_value()) << *violation;
}

TEST_P(TrajectoryDistanceProperties, ConsistencyWhenAdvertised) {
  const auto dist = MakeDistance();
  if (!dist->is_consistent()) GTEST_SKIP();
  Rng rng(seed() + 500);
  for (int trial = 0; trial < 4; ++trial) {
    const auto q = RandomTrack(&rng, 5);
    const auto x = RandomTrack(&rng, 5);
    const auto violation =
        FindConsistencyViolation<Point2d>(*dist, q, x, 1);
    EXPECT_FALSE(violation.has_value())
        << dist->name() << " violated consistency";
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllTrajectoryDistances, TrajectoryDistanceProperties,
    ::testing::Combine(::testing::Values("erp", "frechet", "dtw",
                                         "euclidean", "l1", "linf"),
                       ::testing::Values(7, 77)),
    [](const auto& info) {
      return std::get<0>(info.param) + "_seed" +
             std::to_string(std::get<1>(info.param));
    });

// DTW famously violates the triangle inequality; document it with a
// concrete counterexample so the is_metric() == false flag stays honest.
TEST(DtwNonMetric, TriangleCounterexampleExists) {
  auto dtw = std::move(MakeScalarDistance("dtw")).ValueOrDie();
  bool violated = false;
  Rng rng(424242);
  for (int trial = 0; trial < 4000 && !violated; ++trial) {
    auto make = [&rng]() {
      std::vector<double> v;
      const int n = 1 + static_cast<int>(rng.NextBounded(4));
      for (int i = 0; i < n; ++i) {
        v.push_back(static_cast<double>(rng.NextBounded(3)));
      }
      return v;
    };
    const auto x = make();
    const auto y = make();
    const auto z = make();
    if (dtw->Compute(x, z) > dtw->Compute(x, y) + dtw->Compute(y, z) + 1e-9) {
      violated = true;
    }
  }
  EXPECT_TRUE(violated);
}

}  // namespace
}  // namespace subseq
