#include "subseq/distance/lp.h"

#include <gtest/gtest.h>

#include <vector>

#include "subseq/core/rng.h"
#include "subseq/distance/consistency.h"
#include "subseq/distance/euclidean.h"
#include "subseq/distance/lb_keogh.h"
#include "subseq/distance/dtw.h"

namespace subseq {
namespace {

TEST(MinkowskiTest, L1KnownValue) {
  L1Distance1D d(1.0);
  const std::vector<double> a = {0.0, 0.0, 0.0};
  const std::vector<double> b = {1.0, -2.0, 3.0};
  EXPECT_DOUBLE_EQ(d.Compute(a, b), 6.0);
  EXPECT_EQ(d.name(), "l1");
}

TEST(MinkowskiTest, LInfKnownValue) {
  LInfDistance1D d(kLInfinity);
  const std::vector<double> a = {0.0, 0.0, 0.0};
  const std::vector<double> b = {1.0, -2.0, 3.0};
  EXPECT_DOUBLE_EQ(d.Compute(a, b), 3.0);
  EXPECT_EQ(d.name(), "linf");
}

TEST(MinkowskiTest, P2MatchesEuclidean) {
  MinkowskiDistance<double, ScalarGround> lp(2.0);
  EuclideanDistance1D euclid;
  Rng rng(3);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<double> a;
    std::vector<double> b;
    for (int i = 0; i < 6; ++i) {
      a.push_back(rng.NextDouble(-5, 5));
      b.push_back(rng.NextDouble(-5, 5));
    }
    EXPECT_NEAR(lp.Compute(a, b), euclid.Compute(a, b), 1e-9);
  }
}

TEST(MinkowskiTest, LengthMismatchInfinite) {
  L1Distance1D d(1.0);
  EXPECT_EQ(d.Compute(std::vector<double>{1.0},
                      std::vector<double>{1.0, 2.0}),
            kInfiniteDistance);
}

TEST(MinkowskiTest, MetricAxiomsAcrossP) {
  Rng rng(5);
  std::vector<std::vector<double>> samples;
  for (int i = 0; i < 10; ++i) {
    std::vector<double> s;
    for (int j = 0; j < 5; ++j) s.push_back(rng.NextDouble(-3, 3));
    samples.push_back(std::move(s));
  }
  for (const double p : {1.0, 1.5, 2.0, 3.0, kLInfinity}) {
    MinkowskiDistance<double, ScalarGround> d(p);
    const auto violation = CheckMetricAxioms(d, samples, 1e-9);
    EXPECT_FALSE(violation.has_value()) << "p=" << p << ": " << *violation;
  }
}

TEST(MinkowskiTest, ConsistencyAcrossP) {
  Rng rng(7);
  for (const double p : {1.0, 2.0, kLInfinity}) {
    MinkowskiDistance<double, ScalarGround> d(p);
    std::vector<double> q;
    std::vector<double> x;
    for (int i = 0; i < 6; ++i) {
      q.push_back(rng.NextDouble(0, 4));
      x.push_back(rng.NextDouble(0, 4));
    }
    const auto violation = FindConsistencyViolation<double>(d, q, x, 1);
    EXPECT_FALSE(violation.has_value()) << "p=" << p;
  }
}

TEST(MinkowskiTest, BoundedAbandons) {
  L1Distance1D d(1.0);
  const std::vector<double> a = {0, 0, 0, 0};
  const std::vector<double> b = {5, 5, 5, 5};
  EXPECT_GT(d.ComputeBounded(a, b, 3.0), 3.0);
  EXPECT_DOUBLE_EQ(d.ComputeBounded(a, b, 20.0), 20.0);
}

TEST(MinkowskiTest, Works2D) {
  MinkowskiDistance2D d(1.0);
  const std::vector<Point2d> a = {{0, 0}, {1, 1}};
  const std::vector<Point2d> b = {{3, 4}, {1, 1}};
  EXPECT_DOUBLE_EQ(d.Compute(a, b), 5.0);
}

// ---------------------------------------------------------------------------
// LB_Keogh.

TEST(LbKeoghTest, EnvelopeContainsQuery) {
  Rng rng(11);
  std::vector<double> q;
  for (int i = 0; i < 20; ++i) q.push_back(rng.NextDouble(0, 10));
  const LbKeoghEnvelope env(q, 3);
  for (size_t i = 0; i < q.size(); ++i) {
    EXPECT_LE(env.lower()[i], q[i]);
    EXPECT_GE(env.upper()[i], q[i]);
  }
}

TEST(LbKeoghTest, LowerBoundsBandedDtw) {
  Rng rng(13);
  for (const int band : {1, 3, 8}) {
    DtwDistance1D dtw(band);
    std::vector<double> q;
    for (int i = 0; i < 16; ++i) q.push_back(rng.NextDouble(0, 8));
    const LbKeoghEnvelope env(q, band);
    for (int trial = 0; trial < 25; ++trial) {
      std::vector<double> c;
      for (int i = 0; i < 16; ++i) c.push_back(rng.NextDouble(0, 8));
      const double lb = env.LowerBound(c);
      const double exact = dtw.Compute(q, c);
      EXPECT_LE(lb, exact + 1e-9) << "band " << band;
    }
  }
}

TEST(LbKeoghTest, FullBandLowerBoundsUnconstrainedDtw) {
  Rng rng(17);
  DtwDistance1D dtw;  // unconstrained
  std::vector<double> q;
  for (int i = 0; i < 14; ++i) q.push_back(rng.NextDouble(0, 6));
  const LbKeoghEnvelope env(q, -1);  // full width
  for (int trial = 0; trial < 40; ++trial) {
    std::vector<double> c;
    for (int i = 0; i < 14; ++i) c.push_back(rng.NextDouble(0, 6));
    EXPECT_LE(env.LowerBound(c), dtw.Compute(q, c) + 1e-9);
  }
}

TEST(LbKeoghTest, SelfBoundIsZero) {
  std::vector<double> q = {1, 5, 3, 2, 8};
  const LbKeoghEnvelope env(q, 2);
  EXPECT_DOUBLE_EQ(env.LowerBound(q), 0.0);
}

TEST(LbKeoghTest, LengthMismatchIsTrivialBound) {
  std::vector<double> q = {1, 2, 3};
  const LbKeoghEnvelope env(q, 1);
  EXPECT_DOUBLE_EQ(env.LowerBound(std::vector<double>{1.0, 2.0}), 0.0);
}

TEST(LbKeoghTest, AbandoningMatchesExactUnderCutoff) {
  Rng rng(19);
  std::vector<double> q;
  for (int i = 0; i < 12; ++i) q.push_back(rng.NextDouble(0, 5));
  const LbKeoghEnvelope env(q, 2);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<double> c;
    for (int i = 0; i < 12; ++i) c.push_back(rng.NextDouble(0, 5));
    const double exact = env.LowerBound(c);
    EXPECT_DOUBLE_EQ(env.LowerBoundAbandoning(c, exact + 1.0), exact);
    if (exact > 0.0) {
      EXPECT_GT(env.LowerBoundAbandoning(c, exact / 2.0), exact / 2.0);
    }
  }
}

}  // namespace
}  // namespace subseq
