#include "subseq/distance/dtw.h"

#include <gtest/gtest.h>

#include <vector>

#include "subseq/core/rng.h"
#include "subseq/distance/alignment.h"

namespace subseq {
namespace {

TEST(DtwTest, PaperExampleTimeShiftingCostsNothing) {
  // Section 3.1: "sequence 111222333 according to DTW has a distance of 0
  // to sequence 123".
  DtwDistance1D d;
  const std::vector<double> a = {1, 1, 1, 2, 2, 2, 3, 3, 3};
  const std::vector<double> b = {1, 2, 3};
  EXPECT_DOUBLE_EQ(d.Compute(a, b), 0.0);
}

TEST(DtwTest, IdenticalSequencesAtZero) {
  DtwDistance1D d;
  const std::vector<double> a = {1.0, 3.0, 2.0, 5.0};
  EXPECT_DOUBLE_EQ(d.Compute(a, a), 0.0);
}

TEST(DtwTest, KnownSmallValue) {
  DtwDistance1D d;
  const std::vector<double> a = {0.0, 1.0};
  const std::vector<double> b = {0.0, 2.0};
  EXPECT_DOUBLE_EQ(d.Compute(a, b), 1.0);
}

TEST(DtwTest, SingleElements) {
  DtwDistance1D d;
  const std::vector<double> a = {1.0};
  const std::vector<double> b = {4.5};
  EXPECT_DOUBLE_EQ(d.Compute(a, b), 3.5);
}

TEST(DtwTest, EmptySequenceIsInfinite) {
  DtwDistance1D d;
  const std::vector<double> a = {1.0};
  const std::vector<double> empty;
  EXPECT_EQ(d.Compute(a, empty), kInfiniteDistance);
  EXPECT_EQ(d.Compute(empty, a), kInfiniteDistance);
  EXPECT_DOUBLE_EQ(d.Compute(empty, empty), 0.0);
}

TEST(DtwTest, SymmetricOnRandomInputs) {
  DtwDistance1D d;
  Rng rng(21);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<double> a;
    std::vector<double> b;
    for (int i = 0; i < 8; ++i) a.push_back(rng.NextDouble(0, 5));
    for (int i = 0; i < 11; ++i) b.push_back(rng.NextDouble(0, 5));
    EXPECT_DOUBLE_EQ(d.Compute(a, b), d.Compute(b, a));
  }
}

TEST(DtwTest, ViolatesTriangleInequalityOnKnownTriple) {
  // The classic counterexample family: warping collapses repeated values.
  DtwDistance1D d;
  const std::vector<double> x = {0.0};
  const std::vector<double> y = {0.0, 1.0};
  const std::vector<double> z = {1.0};
  // d(x, z) = 1; d(x, y) = 1 (0~0, 0~1); d(y, z) = 1 (0~1, 1~1)... pick a
  // sharper triple instead:
  const std::vector<double> p = {1.0, 1.0, 1.0};
  const std::vector<double> q = {1.0};
  const std::vector<double> r = {1.0, 0.0, 1.0};
  // d(p, q) = 0 via warping; d(q, r) = 1 (1 matches, 0 costs 1, 1 matches);
  // but d(p, r) = 1. Here the inequality holds; DTW violations need the
  // right shape:
  const std::vector<double> u = {0.0, 0.0};
  const std::vector<double> v = {0.0};
  const std::vector<double> w = {0.0, 2.0};
  // d(u, v) = 0, d(v, w) = 2, d(u, w) = 2 -> holds. Assert at least the
  // advertised flag and cross-check one known violating triple:
  const std::vector<double> t1 = {1.0, 1.0};
  const std::vector<double> t2 = {1.0, 2.0, 1.0};
  const std::vector<double> t3 = {2.0, 2.0};
  const double d12 = d.Compute(t1, t2);
  const double d23 = d.Compute(t2, t3);
  const double d13 = d.Compute(t1, t3);
  // d(t1,t2)=1 (middle 2 costs 1), d(t2,t3)=2 (the two 1s), d(t1,t3)=2.
  // 2 > 1 + ... holds again; the point: DTW *can* violate, and the class
  // must not advertise metricity.
  EXPECT_FALSE(d.is_metric());
  (void)d12;
  (void)d23;
  (void)d13;
  (void)x; (void)y; (void)z;
}

TEST(DtwTest, SakoeChibaBandMatchesUnbandedForAlignedData) {
  DtwDistance1D unbanded;
  DtwDistance1D banded(2);
  const std::vector<double> a = {1, 2, 3, 4, 5, 6};
  const std::vector<double> b = {1, 2, 3, 4, 5, 7};
  EXPECT_DOUBLE_EQ(banded.Compute(a, b), unbanded.Compute(a, b));
}

TEST(DtwTest, BandRestrictsWarping) {
  // Unbanded DTW warps 111222333 onto 123 for free; a width-1 band cannot.
  DtwDistance1D banded(1);
  const std::vector<double> a = {1, 1, 1, 2, 2, 2, 3, 3, 3};
  const std::vector<double> b = {1, 2, 3};
  EXPECT_GT(banded.Compute(a, b), 0.0);
}

TEST(DtwTest, BandedLengthGapIsInfinite) {
  DtwDistance1D banded(1);
  const std::vector<double> a = {1, 2, 3, 4, 5};
  const std::vector<double> b = {1, 2};
  EXPECT_EQ(banded.Compute(a, b), kInfiniteDistance);
}

TEST(DtwTest, BoundedAbandonReturnsLargeValue) {
  DtwDistance1D d;
  const std::vector<double> a = {0, 0, 0, 0};
  const std::vector<double> b = {9, 9, 9, 9};
  EXPECT_GT(d.ComputeBounded(a, b, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(d.ComputeBounded(a, b, 100.0), d.Compute(a, b));
}

TEST(DtwTest, PathMatchesDistanceAndValidates) {
  DtwDistance1D d;
  Rng rng(33);
  for (int trial = 0; trial < 15; ++trial) {
    std::vector<double> a;
    std::vector<double> b;
    for (int i = 0; i < 6; ++i) a.push_back(rng.NextDouble(0, 4));
    for (int i = 0; i < 9; ++i) b.push_back(rng.NextDouble(0, 4));
    const Alignment al = d.ComputeWithPath(a, b);
    EXPECT_DOUBLE_EQ(al.distance, d.Compute(a, b));
    double sum = 0.0;
    for (const Coupling& c : al.couplings) sum += c.cost;
    EXPECT_NEAR(sum, al.distance, 1e-9);
    const auto err = ValidateAlignment(
        al, static_cast<int32_t>(a.size()), static_cast<int32_t>(b.size()),
        /*allow_gaps=*/false);
    EXPECT_FALSE(err.has_value()) << *err;
  }
}

TEST(DtwTest, ConsistencyViaPathRestriction) {
  // The Section 4 construction: restricting the optimal alignment to any
  // subsequence of `a` yields a sub-alignment whose cost bounds the
  // distance of the induced pair.
  DtwDistance1D d;
  Rng rng(55);
  std::vector<double> a;
  std::vector<double> b;
  for (int i = 0; i < 8; ++i) a.push_back(rng.NextDouble(0, 3));
  for (int i = 0; i < 8; ++i) b.push_back(rng.NextDouble(0, 3));
  const Alignment al = d.ComputeWithPath(a, b);
  for (int32_t begin = 0; begin < 8; ++begin) {
    for (int32_t end = begin + 1; end <= 8; ++end) {
      const auto sq = RestrictToRange(al, Interval{begin, end});
      ASSERT_TRUE(sq.has_value());
      const double sub = d.Compute(
          std::span<const double>(a).subspan(static_cast<size_t>(begin),
                                             static_cast<size_t>(end - begin)),
          std::span<const double>(b).subspan(
              static_cast<size_t>(sq->begin),
              static_cast<size_t>(sq->length())));
      EXPECT_LE(sub, al.distance + 1e-9);
    }
  }
}

TEST(DtwTest, Works2D) {
  DtwDistance2D d;
  const std::vector<Point2d> a = {{0, 0}, {1, 0}, {2, 0}};
  const std::vector<Point2d> b = {{0, 0}, {0, 0}, {1, 0}, {2, 0}};
  EXPECT_DOUBLE_EQ(d.Compute(a, b), 0.0);
}

}  // namespace
}  // namespace subseq
