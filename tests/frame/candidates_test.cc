#include "subseq/frame/candidates.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace subseq {
namespace {

WindowCatalog MakeCatalog(std::vector<int32_t> lengths, int32_t l) {
  auto result = WindowCatalog::Partition(lengths, l);
  EXPECT_TRUE(result.ok());
  return std::move(result).ValueOrDie();
}

TEST(BuildChainsTest, EmptyHitsYieldNoChains) {
  const WindowCatalog catalog = MakeCatalog({40}, 5);
  EXPECT_TRUE(BuildChains({}, catalog).empty());
}

TEST(BuildChainsTest, SingleHitSingleChain) {
  const WindowCatalog catalog = MakeCatalog({40}, 5);
  const std::vector<SegmentHit> hits = {{Interval{3, 8}, 2, 1.0}};
  const auto chains = BuildChains(hits, catalog);
  ASSERT_EQ(chains.size(), 1u);
  EXPECT_EQ(chains[0].seq, 0);
  EXPECT_EQ(chains[0].first_window_index, 2);
  EXPECT_EQ(chains[0].length, 1);
  EXPECT_EQ(chains[0].query_span, (Interval{3, 8}));
}

TEST(BuildChainsTest, ConsecutiveWindowsMerge) {
  const WindowCatalog catalog = MakeCatalog({40}, 5);
  const std::vector<SegmentHit> hits = {
      {Interval{0, 5}, 1, 1.0},
      {Interval{5, 10}, 2, 1.0},
      {Interval{9, 14}, 3, 1.0},
      {Interval{20, 25}, 6, 1.0},  // separate chain
  };
  const auto chains = BuildChains(hits, catalog);
  ASSERT_EQ(chains.size(), 2u);
  // Longest first.
  EXPECT_EQ(chains[0].length, 3);
  EXPECT_EQ(chains[0].first_window_index, 1);
  EXPECT_EQ(chains[0].query_span, (Interval{0, 14}));
  EXPECT_EQ(chains[1].length, 1);
  EXPECT_EQ(chains[1].first_window_index, 6);
}

TEST(BuildChainsTest, ChainsDoNotCrossSequences) {
  const WindowCatalog catalog = MakeCatalog({10, 10}, 5);
  // Windows 0,1 belong to seq 0; windows 2,3 to seq 1.
  const std::vector<SegmentHit> hits = {
      {Interval{0, 5}, 1, 1.0},
      {Interval{0, 5}, 2, 1.0},
  };
  const auto chains = BuildChains(hits, catalog);
  ASSERT_EQ(chains.size(), 2u);
  EXPECT_EQ(chains[0].length, 1);
  EXPECT_EQ(chains[1].length, 1);
}

TEST(BuildChainsTest, DuplicateHitsOnSameWindowMergeQuerySpans) {
  const WindowCatalog catalog = MakeCatalog({40}, 5);
  const std::vector<SegmentHit> hits = {
      {Interval{0, 5}, 2, 1.0},
      {Interval{10, 16}, 2, 0.5},
  };
  const auto chains = BuildChains(hits, catalog);
  ASSERT_EQ(chains.size(), 1u);
  EXPECT_EQ(chains[0].query_span, (Interval{0, 16}));
}

TEST(ExpandHitTest, PaperRanges) {
  // l = 5, lambda = 10, lambda0 = 2; hit: segment [7, 12) on window 4
  // (db offset 20). Paper: SQ start in [a-l-lambda0, a], end in
  // [b, b+l+lambda0]; SX start in [c-l, c], end in [c+l, c+2l].
  const WindowCatalog catalog = MakeCatalog({60}, 5);
  const SegmentHit hit{Interval{7, 12}, 4, 1.0};
  const CandidateRegion r = ExpandHit(hit, catalog, 10, 2,
                                      /*query_length=*/40,
                                      /*sequence_length=*/60);
  EXPECT_EQ(r.seq, 0);
  EXPECT_EQ(r.q_begin_min, 0);   // 7 - 5 - 2
  EXPECT_EQ(r.q_begin_max, 7);
  EXPECT_EQ(r.q_end_min, 12);
  EXPECT_EQ(r.q_end_max, 19);    // 12 + 5 + 2
  EXPECT_EQ(r.x_begin_min, 15);  // 20 - 5
  EXPECT_EQ(r.x_begin_max, 20);
  EXPECT_EQ(r.x_end_min, 25);    // 20 + 5
  EXPECT_EQ(r.x_end_max, 30);    // 20 + 10
}

TEST(ExpandHitTest, ClampsToSequenceBounds) {
  const WindowCatalog catalog = MakeCatalog({20}, 5);
  const SegmentHit hit{Interval{0, 5}, 0, 1.0};
  const CandidateRegion r = ExpandHit(hit, catalog, 10, 2, 12, 20);
  EXPECT_GE(r.q_begin_min, 0);
  EXPECT_LE(r.q_end_max, 12);
  EXPECT_GE(r.x_begin_min, 0);
  EXPECT_LE(r.x_end_max, 20);
}

TEST(ExpandChainTest, CoversWholeChain) {
  const WindowCatalog catalog = MakeCatalog({100}, 5);
  WindowChain chain;
  chain.seq = 0;
  chain.first_window_index = 4;  // db offset 20
  chain.length = 3;              // spans [20, 35)
  chain.query_span = Interval{10, 28};
  const CandidateRegion r = ExpandChain(chain, catalog, 10, 2, 50, 100);
  EXPECT_EQ(r.x_begin_min, 15);  // 20 - 5
  EXPECT_EQ(r.x_begin_max, 30);  // 35 - 5
  EXPECT_EQ(r.x_end_min, 25);    // 20 + 5
  EXPECT_EQ(r.x_end_max, 40);    // 35 + 5
  EXPECT_EQ(r.q_begin_min, 3);   // 10 - 5 - 2
  EXPECT_EQ(r.q_begin_max, 28);
  EXPECT_EQ(r.q_end_min, 10);
  EXPECT_EQ(r.q_end_max, 35);    // 28 + 5 + 2
}

// The reference enumeration RegionVerificationCount must agree with: a
// literal transcription of the step-5 verify loops, counting instead of
// computing distances.
int64_t BruteForceVerificationCount(const CandidateRegion& region,
                                    int32_t lambda, int32_t lambda0) {
  int64_t count = 0;
  for (int32_t qb = region.q_begin_min; qb <= region.q_begin_max; ++qb) {
    const int32_t qe_lo = std::max(region.q_end_min, qb + lambda);
    for (int32_t qe = qe_lo; qe <= region.q_end_max; ++qe) {
      const int32_t qlen = qe - qb;
      for (int32_t xb = region.x_begin_min; xb <= region.x_begin_max; ++xb) {
        const int32_t xe_lo =
            std::max({region.x_end_min, xb + lambda, xb + qlen - lambda0});
        const int32_t xe_hi = std::min(region.x_end_max, xb + qlen + lambda0);
        for (int32_t xe = xe_lo; xe <= xe_hi; ++xe) ++count;
      }
    }
  }
  return count;
}

TEST(RegionVerificationCountTest, MatchesBruteForceEnumeration) {
  const WindowCatalog catalog = MakeCatalog({100}, 5);
  // Hit-expanded, chain-expanded, clamped, and hand-built regions.
  std::vector<CandidateRegion> regions;
  regions.push_back(
      ExpandHit(SegmentHit{Interval{7, 12}, 4, 1.0}, catalog, 10, 2, 30, 100));
  regions.push_back(
      ExpandHit(SegmentHit{Interval{0, 5}, 0, 1.0}, catalog, 10, 2, 12, 20));
  WindowChain chain;
  chain.seq = 0;
  chain.first_window_index = 4;
  chain.length = 3;
  chain.query_span = Interval{10, 28};
  regions.push_back(ExpandChain(chain, catalog, 10, 2, 50, 100));
  CandidateRegion degenerate;  // all-zero: a fully clamped corner case
  regions.push_back(degenerate);
  CandidateRegion narrow;
  narrow.q_begin_min = 3;
  narrow.q_begin_max = 5;
  narrow.q_end_min = 14;
  narrow.q_end_max = 18;
  narrow.x_begin_min = 0;
  narrow.x_begin_max = 9;
  narrow.x_end_min = 12;
  narrow.x_end_max = 21;
  regions.push_back(narrow);

  for (size_t i = 0; i < regions.size(); ++i) {
    SCOPED_TRACE(i);
    EXPECT_EQ(RegionVerificationCount(regions[i], 10, 2),
              BruteForceVerificationCount(regions[i], 10, 2));
    EXPECT_EQ(RegionVerificationCount(regions[i], 10, 0),
              BruteForceVerificationCount(regions[i], 10, 0));
  }
}

TEST(RegionVerificationCountTest, EmptyRegionCostsNothing) {
  CandidateRegion region;
  region.q_end_max = 5;  // qlen_max = 5 < lambda = 10
  EXPECT_EQ(RegionVerificationCount(region, 10, 2), 0);
}

}  // namespace
}  // namespace subseq
