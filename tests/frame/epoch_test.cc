// Epoch-versioned live ingest: the determinism contract.
//
// A matcher derived through a chain of WithAppended / WithRetired ops
// (shared base index + LinearScan delta + tombstone mask) must answer
// every query element-wise identically — matches AND verification
// stats — to a COLD Build over the final epoch's database. The matrix
// covers every index backend, exec thread budgets 1 and 8, and the
// partitioned builds (contiguous shards or routed cells) whose base
// indexes the live matcher shares. Compact() additionally promises a
// byte-identical index file to the cold build — merge output and cold
// output are THE SAME bytes, which is what lets the serving layer swap
// a merged epoch in without any behavioral seam.

#include <gtest/gtest.h>

#include <fstream>
#include <iterator>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "subseq/data/protein_gen.h"
#include "subseq/distance/levenshtein.h"
#include "subseq/exec/stats_sink.h"
#include "subseq/frame/matcher.h"

namespace subseq {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

std::vector<char> ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::vector<char>(std::istreambuf_iterator<char>(in),
                           std::istreambuf_iterator<char>());
}

const std::vector<IndexKind> kAllKinds = {
    IndexKind::kReferenceNet, IndexKind::kCoverTree, IndexKind::kMvIndex,
    IndexKind::kVpTree, IndexKind::kLinearScan};

/// A query cut from sequence `seq` of the database (length 26).
std::vector<char> CutQuery(const SequenceDatabase<char>& db, SeqId seq,
                           int32_t offset) {
  const Sequence<char>& s = db.at(seq);
  EXPECT_GE(s.size(), offset + 26);
  const auto view = s.Subsequence(Interval{offset, offset + 26});
  return std::vector<char>(view.begin(), view.end());
}

void ExpectStatsEqual(const MatchQueryStats& live,
                      const MatchQueryStats& cold, bool full,
                      const std::string& where) {
  EXPECT_EQ(live.segments, cold.segments) << where;
  EXPECT_EQ(live.hits, cold.hits) << where;
  EXPECT_EQ(live.chains, cold.chains) << where;
  EXPECT_EQ(live.verifications, cold.verifications) << where;
  if (full) {
    // LinearScan bills every candidate it is responsible for, so the
    // base + delta split sums to exactly the monolithic bill; the tree
    // backends' filter_computations may legitimately move between the
    // delta scan and the merged index (the same sanctioned freedom
    // sharding and routing have).
    EXPECT_EQ(live.filter_computations, cold.filter_computations) << where;
  }
}

/// Runs both query types against `live` and `cold` and asserts
/// element-wise equality (matches and stats).
void ExpectAnswersIdentical(const SubsequenceMatcher<char>& live,
                            const SubsequenceMatcher<char>& cold,
                            const std::vector<std::vector<char>>& queries,
                            double epsilon, bool full_stats,
                            const std::string& where) {
  for (size_t q = 0; q < queries.size(); ++q) {
    const std::string at = where + " query " + std::to_string(q);
    MatchQueryStats live_stats, cold_stats;
    auto live_range = live.RangeSearch(queries[q], epsilon, &live_stats);
    auto cold_range = cold.RangeSearch(queries[q], epsilon, &cold_stats);
    ASSERT_TRUE(live_range.ok() && cold_range.ok()) << at;
    EXPECT_EQ(live_range.value(), cold_range.value()) << at;
    ExpectStatsEqual(live_stats, cold_stats, full_stats, at + " (range)");

    live_stats = {};
    cold_stats = {};
    auto live_best = live.LongestMatch(queries[q], epsilon, &live_stats);
    auto cold_best = cold.LongestMatch(queries[q], epsilon, &cold_stats);
    ASSERT_TRUE(live_best.ok() && cold_best.ok()) << at;
    ASSERT_EQ(live_best.value().has_value(), cold_best.value().has_value())
        << at;
    if (live_best.value().has_value()) {
      EXPECT_EQ(*live_best.value(), *cold_best.value()) << at;
    }
    ExpectStatsEqual(live_stats, cold_stats, full_stats, at + " (longest)");
  }
}

/// The op chain under test: two appends, a retire of a seed sequence, a
/// third append, then a retire of the FIRST APPENDED sequence (so the
/// tombstone mask reaches into the delta, not just the base). Returns
/// the live matcher after every op applied in order.
std::unique_ptr<SubsequenceMatcher<char>> ApplyOps(
    const SubsequenceMatcher<char>& start, ProteinGenerator* gen,
    const std::vector<std::vector<char>>& queries, double epsilon,
    bool full_stats, bool check_intermediate) {
  const SeqId first_appended = start.database().size();
  std::unique_ptr<SubsequenceMatcher<char>> live;
  const auto step = [&](auto&& derive, const std::string& what) {
    const SubsequenceMatcher<char>& from = live ? *live : start;
    const uint64_t before = from.epoch();
    auto next = derive(from);
    ASSERT_TRUE(next.ok()) << what << ": " << next.status().ToString();
    live = std::move(next).ValueOrDie();
    EXPECT_EQ(live->epoch(), before + 1) << what;
    if (check_intermediate) {
      auto cold = SubsequenceMatcher<char>::Build(
          live->database(), live->distance(), live->options());
      ASSERT_TRUE(cold.ok()) << what;
      ExpectAnswersIdentical(*live, *cold.value(), queries, epsilon,
                             full_stats, what);
    }
  };
  step([&](const auto& m) { return m.WithAppended(gen->GenerateWithLength(60)); },
       "append#1");
  step([&](const auto& m) { return m.WithAppended(gen->GenerateWithLength(44)); },
       "append#2");
  step([&](const auto& m) { return m.WithRetired(1); }, "retire seed 1");
  step([&](const auto& m) { return m.WithAppended(gen->GenerateWithLength(52)); },
       "append#3");
  step([&](const auto& m) { return m.WithRetired(first_appended); },
       "retire appended");
  return live;
}

TEST(EpochDeterminismTest, LiveOpsMatchColdBuildAcrossKindsThreadsPartitions) {
  ProteinGenerator seed_gen(ProteinGenOptions{.mean_length = 60, .seed = 71});
  const SequenceDatabase<char> db = seed_gen.GenerateDatabaseWithWindows(36, 10);
  const LevenshteinDistance<char> dist;
  const double epsilon = 2.0;

  const std::vector<std::vector<char>> queries = {
      CutQuery(db, 0, 0), CutQuery(db, 0, 9), CutQuery(db, 1, 4)};

  for (const IndexKind kind : kAllKinds) {
    for (const int32_t threads : {1, 8}) {
      MatcherOptions options;
      options.lambda = 20;
      options.lambda0 = 5;
      options.index_kind = kind;
      options.exec.num_threads = threads;
      // Partitioned bases: the routed metric backends split by distance
      // cells, the rest by contiguous shards — the live delta and the
      // tombstone mask sit on top of either identically.
      if (kind == IndexKind::kReferenceNet || kind == IndexKind::kVpTree) {
        options.exec.routing_cells = 2;
      } else {
        options.exec.num_shards = 2;
      }
      const bool full_stats = kind == IndexKind::kLinearScan;
      const std::string where =
          "kind " + std::to_string(static_cast<int>(kind)) + " threads " +
          std::to_string(threads);

      auto start = SubsequenceMatcher<char>::Build(db, dist, options);
      ASSERT_TRUE(start.ok()) << where << ": " << start.status().ToString();

      // A fresh generator per configuration so every (kind, threads)
      // cell applies the IDENTICAL op chain.
      ProteinGenerator op_gen(
          ProteinGenOptions{.mean_length = 60, .seed = 72});
      auto live = ApplyOps(*start.value(), &op_gen, queries, epsilon,
                           full_stats, /*check_intermediate=*/false);
      ASSERT_NE(live, nullptr) << where;
      EXPECT_GT(live->delta_windows(), 0) << where;
      EXPECT_GT(live->num_tombstoned_windows(), 0) << where;

      auto cold = SubsequenceMatcher<char>::Build(
          live->database(), live->distance(), live->options());
      ASSERT_TRUE(cold.ok()) << where;
      ExpectAnswersIdentical(*live, *cold.value(), queries, epsilon,
                             full_stats, where);
    }
  }
}

TEST(EpochDeterminismTest, EveryIntermediateEpochMatchesItsColdBuild) {
  // The chain is exact at EVERY epoch, not just the final one — each op
  // derives from an already-derived matcher (delta on delta, tombstone
  // into delta), which is the compounding the serving layer relies on
  // between merges.
  ProteinGenerator seed_gen(ProteinGenOptions{.mean_length = 60, .seed = 73});
  const SequenceDatabase<char> db = seed_gen.GenerateDatabaseWithWindows(24, 10);
  const LevenshteinDistance<char> dist;
  MatcherOptions options;
  options.lambda = 20;
  options.lambda0 = 5;
  options.index_kind = IndexKind::kLinearScan;
  const std::vector<std::vector<char>> queries = {CutQuery(db, 0, 0),
                                                  CutQuery(db, 1, 3)};
  auto start = SubsequenceMatcher<char>::Build(db, dist, options);
  ASSERT_TRUE(start.ok());
  ProteinGenerator op_gen(ProteinGenOptions{.mean_length = 60, .seed = 74});
  auto live = ApplyOps(*start.value(), &op_gen, queries, 2.0,
                       /*full_stats=*/true, /*check_intermediate=*/true);
  ASSERT_NE(live, nullptr);
  EXPECT_EQ(live->epoch(), 5u);
}

TEST(EpochDeterminismTest, DeltaAndTombstoneCountersAreObservable) {
  // delta_windows_probed bills the delta scan per query;
  // tombstones_masked counts masked hits WITHOUT billing them (the
  // result_count reflects the post-mask hit list). The exact-repeat
  // query guarantees the retired sequence's windows would have hit.
  ProteinGenerator seed_gen(ProteinGenOptions{.mean_length = 60, .seed = 75});
  const SequenceDatabase<char> db = seed_gen.GenerateDatabaseWithWindows(16, 10);
  const LevenshteinDistance<char> dist;
  MatcherOptions options;
  options.lambda = 20;
  options.lambda0 = 5;
  options.index_kind = IndexKind::kLinearScan;
  auto start = std::move(SubsequenceMatcher<char>::Build(db, dist, options))
                   .ValueOrDie();

  ProteinGenerator op_gen(ProteinGenOptions{.mean_length = 60, .seed = 76});
  auto appended = std::move(start->WithAppended(op_gen.GenerateWithLength(48)))
                      .ValueOrDie();
  auto live = std::move(appended->WithRetired(0)).ValueOrDie();
  ASSERT_GT(live->delta_windows(), 0);
  ASSERT_GT(live->num_tombstoned_windows(), 0);

  const std::vector<char> query = CutQuery(db, 0, 0);
  const SegmentQueryBatch batch = live->MakeSegmentQueries(query);
  ASSERT_FALSE(batch.queries.empty());
  StatsSink sink;
  std::vector<QueryStats> per_query(batch.queries.size());
  const auto results = live->BatchFilterWindows(
      batch.queries, /*epsilon=*/0.0, live->options().exec, &sink,
      per_query.data());

  int64_t probed = 0;
  int64_t masked = 0;
  int64_t returned = 0;
  for (size_t q = 0; q < per_query.size(); ++q) {
    probed += per_query[q].delta_windows_probed;
    masked += per_query[q].tombstones_masked;
    returned += per_query[q].result_count;
    // The per-query split's result_count is the post-mask hit count.
    EXPECT_EQ(per_query[q].result_count,
              static_cast<int64_t>(results[q].size()));
    // Every delta window is scanned (LinearScan delta), none skipped.
    EXPECT_EQ(per_query[q].delta_windows_probed, live->delta_windows());
  }
  EXPECT_GT(probed, 0);
  EXPECT_GT(masked, 0) << "the retired sequence's exact windows must have "
                          "been masked out of the epsilon=0 self-hit";
  EXPECT_EQ(sink.results(), returned);
  EXPECT_EQ(sink.delta_windows_probed(), probed);
  EXPECT_EQ(sink.tombstones_masked(), masked);
  // No tombstoned window may ever surface in a result list.
  for (const auto& hits : results) {
    for (const ObjectId id : hits) {
      const WindowRef& ref = live->catalog().at(id);
      EXPECT_FALSE(live->database().is_retired(ref.seq)) << "window " << id;
    }
  }
}

TEST(EpochDeterminismTest, CompactIsByteIdenticalToColdBuild) {
  // Compact (the serving layer's background merge) must produce the
  // SAME index file a cold Build over the same epoch's database writes:
  // merge output has no identity of its own.
  ProteinGenerator seed_gen(ProteinGenOptions{.mean_length = 60, .seed = 77});
  const SequenceDatabase<char> db = seed_gen.GenerateDatabaseWithWindows(20, 10);
  const LevenshteinDistance<char> dist;
  const std::vector<std::vector<char>> queries = {CutQuery(db, 0, 0)};

  for (const IndexKind kind : kAllKinds) {
    MatcherOptions options;
    options.lambda = 20;
    options.lambda0 = 5;
    options.index_kind = kind;
    const std::string where = "kind " + std::to_string(static_cast<int>(kind));
    auto start = SubsequenceMatcher<char>::Build(db, dist, options);
    ASSERT_TRUE(start.ok()) << where;
    ProteinGenerator op_gen(ProteinGenOptions{.mean_length = 60, .seed = 78});
    auto live = ApplyOps(*start.value(), &op_gen, queries, 2.0,
                         /*full_stats=*/false, /*check_intermediate=*/false);
    ASSERT_NE(live, nullptr) << where;

    auto compacted = live->Compact();
    ASSERT_TRUE(compacted.ok()) << where << ": "
                                << compacted.status().ToString();
    EXPECT_EQ(compacted.value()->epoch(), live->epoch()) << where;
    EXPECT_EQ(compacted.value()->delta_windows(), 0) << where;

    auto cold = SubsequenceMatcher<char>::Build(
        live->database(), live->distance(), live->options());
    ASSERT_TRUE(cold.ok()) << where;

    const std::string merged_path =
        TempPath("epoch_merge_" + std::to_string(static_cast<int>(kind)));
    const std::string cold_path =
        TempPath("epoch_cold_" + std::to_string(static_cast<int>(kind)));
    ASSERT_TRUE(compacted.value()->SaveIndex(merged_path).ok()) << where;
    ASSERT_TRUE(cold.value()->SaveIndex(cold_path).ok()) << where;
    EXPECT_EQ(ReadFileBytes(merged_path), ReadFileBytes(cold_path))
        << where << ": merge output must be byte-identical to a cold build";

    // And the compacted matcher answers like the live one (same epoch,
    // merged billing — full stats only where LinearScan guarantees it).
    ExpectAnswersIdentical(*live, *compacted.value(), queries, 2.0,
                           kind == IndexKind::kLinearScan, where);
  }
}

TEST(EpochDeterminismTest, MidIngestSnapshotRoundTripsByteStably) {
  // A live matcher (delta + tombstones) saved mid-ingest must reload
  // over the same epoch's database into an identically-answering
  // matcher — same base/delta split, so the billing agrees too — and
  // re-save to the identical bytes. Loading over the wrong epoch is
  // refused. Covers every kind over sharded and routed bases (the
  // epoch.meta sections resolve shard/cell counts against the BASE
  // window count, not the grown catalog).
  ProteinGenerator seed_gen(ProteinGenOptions{.mean_length = 60, .seed = 90});
  const SequenceDatabase<char> db = seed_gen.GenerateDatabaseWithWindows(24, 10);
  const LevenshteinDistance<char> dist;
  const std::vector<std::vector<char>> queries = {CutQuery(db, 0, 0),
                                                  CutQuery(db, 1, 2)};
  for (const IndexKind kind : kAllKinds) {
    MatcherOptions options;
    options.lambda = 20;
    options.lambda0 = 5;
    options.index_kind = kind;
    if (kind == IndexKind::kReferenceNet || kind == IndexKind::kVpTree) {
      options.exec.routing_cells = 2;
    } else {
      options.exec.num_shards = 2;
    }
    const std::string where = "kind " + std::to_string(static_cast<int>(kind));
    auto start = SubsequenceMatcher<char>::Build(db, dist, options);
    ASSERT_TRUE(start.ok()) << where;
    ProteinGenerator op_gen(ProteinGenOptions{.mean_length = 60, .seed = 91});
    auto live = ApplyOps(*start.value(), &op_gen, queries, 2.0,
                         /*full_stats=*/false, /*check_intermediate=*/false);
    ASSERT_NE(live, nullptr) << where;
    ASSERT_GT(live->delta_windows(), 0) << where;
    ASSERT_GT(live->num_tombstoned_windows(), 0) << where;

    const std::string tag = std::to_string(static_cast<int>(kind));
    const std::string saved = TempPath("epoch_live_" + tag);
    const std::string resaved = TempPath("epoch_live_resaved_" + tag);
    ASSERT_TRUE(live->SaveIndex(saved).ok()) << where;

    auto loaded = SubsequenceMatcher<char>::LoadIndex(
        live->database(), live->distance(), live->options(), saved);
    ASSERT_TRUE(loaded.ok()) << where << ": " << loaded.status().ToString();
    EXPECT_EQ(loaded.value()->epoch(), live->epoch()) << where;
    EXPECT_EQ(loaded.value()->delta_windows(), live->delta_windows()) << where;
    EXPECT_EQ(loaded.value()->num_tombstoned_windows(),
              live->num_tombstoned_windows())
        << where;
    ASSERT_TRUE(loaded.value()->SaveIndex(resaved).ok()) << where;
    EXPECT_EQ(ReadFileBytes(saved), ReadFileBytes(resaved))
        << where << ": mid-ingest save -> load -> save must be byte-stable";
    // Same epoch, same base/delta split: FULL stats equality, all kinds.
    ExpectAnswersIdentical(*live, *loaded.value(), queries, 2.0,
                           /*full_stats=*/true, where);

    // The epoch id in the snapshot is validated against the database
    // the caller supplies, never trusted.
    EXPECT_FALSE(SubsequenceMatcher<char>::LoadIndex(db, dist, live->options(),
                                                     saved)
                     .ok())
        << where;
  }
}

TEST(EpochDeterminismTest, RetireValidatesItsArgument) {
  ProteinGenerator gen(ProteinGenOptions{.mean_length = 60, .seed = 79});
  const SequenceDatabase<char> db = gen.GenerateDatabaseWithWindows(12, 10);
  const LevenshteinDistance<char> dist;
  MatcherOptions options;
  options.lambda = 20;
  options.lambda0 = 5;
  options.index_kind = IndexKind::kLinearScan;
  auto m = std::move(SubsequenceMatcher<char>::Build(db, dist, options))
               .ValueOrDie();
  EXPECT_EQ(m->WithRetired(-1).status().code(), StatusCode::kOutOfRange);
  EXPECT_EQ(m->WithRetired(db.size()).status().code(),
            StatusCode::kOutOfRange);
  auto retired = std::move(m->WithRetired(0)).ValueOrDie();
  EXPECT_EQ(retired->WithRetired(0).status().code(),
            StatusCode::kAlreadyExists);
  // ObjectIds are never renumbered by a retire.
  EXPECT_EQ(retired->catalog().num_windows(), m->catalog().num_windows());
}

}  // namespace
}  // namespace subseq
