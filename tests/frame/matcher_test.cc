#include "subseq/frame/matcher.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "subseq/core/rng.h"
#include "subseq/distance/dtw.h"
#include "subseq/distance/erp.h"
#include "subseq/distance/levenshtein.h"
#include "testing/helpers.h"

namespace subseq {
namespace {

using ::subseq::testing::BruteForceRangeSearch;
using ::subseq::testing::RandomString;
using ::subseq::testing::SortMatches;

// ---------------------------------------------------------------------------
// Build validation.

TEST(MatcherBuildTest, RejectsOddLambda) {
  SequenceDatabase<char> db;
  db.Add(MakeStringSequence("ACGTACGTACGT"));
  const LevenshteinDistance<char> dist;
  MatcherOptions options;
  options.lambda = 7;
  const auto result = SubsequenceMatcher<char>::Build(db, dist, options);
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(MatcherBuildTest, RejectsBadLambda0) {
  SequenceDatabase<char> db;
  db.Add(MakeStringSequence("ACGTACGTACGT"));
  const LevenshteinDistance<char> dist;
  MatcherOptions options;
  options.lambda = 8;
  options.lambda0 = 4;  // must be < lambda / 2
  EXPECT_EQ(SubsequenceMatcher<char>::Build(db, dist, options)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  options.lambda0 = -1;
  EXPECT_EQ(SubsequenceMatcher<char>::Build(db, dist, options)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

TEST(MatcherBuildTest, RejectsNonMetricDistanceWithMetricIndex) {
  SequenceDatabase<double> db;
  db.Add(Sequence<double>({1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12}));
  const DtwDistance1D dtw;
  MatcherOptions options;
  options.lambda = 6;
  options.lambda0 = 1;
  options.index_kind = IndexKind::kReferenceNet;
  EXPECT_EQ(SubsequenceMatcher<double>::Build(db, dtw, options)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

TEST(MatcherBuildTest, AcceptsDtwWithLinearScan) {
  SequenceDatabase<double> db;
  db.Add(Sequence<double>({1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12}));
  const DtwDistance1D dtw;
  MatcherOptions options;
  options.lambda = 6;
  options.lambda0 = 1;
  options.index_kind = IndexKind::kLinearScan;
  EXPECT_TRUE(SubsequenceMatcher<double>::Build(db, dtw, options).ok());
}

TEST(MatcherBuildTest, RejectsBandedDtwEvenWithLinearScan) {
  // A banded DTW is not consistent, so the filter would dismiss matches.
  SequenceDatabase<double> db;
  db.Add(Sequence<double>({1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12}));
  const DtwDistance1D banded(2);
  MatcherOptions options;
  options.lambda = 6;
  options.lambda0 = 1;
  options.index_kind = IndexKind::kLinearScan;
  EXPECT_EQ(SubsequenceMatcher<double>::Build(db, banded, options)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

TEST(MatcherBuildTest, WindowLengthIsHalfLambda) {
  SequenceDatabase<char> db;
  db.Add(MakeStringSequence("ACGTACGTACGTACGTACGT"));
  const LevenshteinDistance<char> dist;
  MatcherOptions options;
  options.lambda = 8;
  options.lambda0 = 2;
  auto matcher = std::move(SubsequenceMatcher<char>::Build(db, dist, options))
                     .ValueOrDie();
  EXPECT_EQ(matcher->window_length(), 4);
  EXPECT_EQ(matcher->catalog().num_windows(), 5);
}

// ---------------------------------------------------------------------------
// Filter behaviour (steps 3-4).

TEST(MatcherFilterTest, IdenticalSubsequenceProducesHits) {
  // The database contains the query's middle verbatim, so segments must
  // hit at epsilon 0.
  const Sequence<char> query =
      MakeStringSequence("WWWWACGTACGTACGTWWWW");
  SequenceDatabase<char> db;
  db.Add(MakeStringSequence("KKKKKKKKACGTACGTACGTKKKKKKKK"));
  const LevenshteinDistance<char> dist;
  MatcherOptions options;
  options.lambda = 8;
  options.lambda0 = 2;
  auto matcher = std::move(SubsequenceMatcher<char>::Build(db, dist, options))
                     .ValueOrDie();
  MatchQueryStats stats;
  const auto hits = matcher->FilterSegments(query.view(), 0.0, &stats);
  EXPECT_FALSE(hits.empty());
  EXPECT_GT(stats.segments, 0);
  EXPECT_GT(stats.filter_computations, 0);
}

TEST(MatcherFilterTest, NoSpuriousHitsAtZeroEpsilonOnDisjointAlphabets) {
  const Sequence<char> query = MakeStringSequence("AAAAAAAAAAAAAAAA");
  SequenceDatabase<char> db;
  db.Add(MakeStringSequence("CCCCCCCCCCCCCCCCCCCCCCCC"));
  const LevenshteinDistance<char> dist;
  MatcherOptions options;
  options.lambda = 8;
  options.lambda0 = 2;
  auto matcher = std::move(SubsequenceMatcher<char>::Build(db, dist, options))
                     .ValueOrDie();
  EXPECT_TRUE(matcher->FilterSegments(query.view(), 0.0, nullptr).empty());
}

// Lemma 2/3 no-false-dismissal at the filter level: for every true match
// (found by brute force) with distance <= lambda0, some window fully inside
// its SX must be hit.
TEST(MatcherFilterTest, FilterNeverDismissesTrueMatches) {
  Rng rng(321);
  const LevenshteinDistance<char> dist;
  MatcherOptions options;
  options.lambda = 8;
  options.lambda0 = 2;

  for (int trial = 0; trial < 5; ++trial) {
    SequenceDatabase<char> db;
    db.Add(Sequence<char>(RandomString(&rng, 40, "ACG")));
    const auto query_elems = RandomString(&rng, 24, "ACG");
    auto matcher =
        std::move(SubsequenceMatcher<char>::Build(db, dist, options))
            .ValueOrDie();

    const double eps = 2.0;  // == lambda0, the lossless regime
    const auto truth = BruteForceRangeSearch<char>(
        db, dist, query_elems, eps, options.lambda, options.lambda0);
    const auto hits = matcher->FilterSegments(query_elems, eps, nullptr);
    std::set<ObjectId> hit_windows;
    for (const auto& h : hits) hit_windows.insert(h.window);

    for (const auto& match : truth) {
      bool some_window_hit = false;
      for (ObjectId w = 0; w < matcher->catalog().num_windows(); ++w) {
        if (matcher->catalog().at(w).seq != match.seq) continue;
        if (!match.db.Contains(matcher->catalog().at(w).span)) continue;
        if (hit_windows.count(w) > 0) {
          some_window_hit = true;
          break;
        }
      }
      EXPECT_TRUE(some_window_hit)
          << "match SX=[" << match.db.begin << "," << match.db.end
          << ") d=" << match.distance << " dismissed by the filter";
    }
  }
}

// ---------------------------------------------------------------------------
// Type I.

TEST(MatcherTypeITest, ResultsAreSoundAndVerified) {
  Rng rng(654);
  const LevenshteinDistance<char> dist;
  MatcherOptions options;
  options.lambda = 8;
  options.lambda0 = 2;
  SequenceDatabase<char> db;
  db.Add(Sequence<char>(RandomString(&rng, 36, "ACG")));
  const auto query_elems = RandomString(&rng, 20, "ACG");
  auto matcher = std::move(SubsequenceMatcher<char>::Build(db, dist, options))
                     .ValueOrDie();

  const double eps = 2.0;
  auto result = matcher->RangeSearch(query_elems, eps);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const auto truth = BruteForceRangeSearch<char>(
      db, dist, query_elems, eps, options.lambda, options.lambda0);
  std::set<std::array<int32_t, 5>> truth_keys;
  for (const auto& m : truth) {
    truth_keys.insert({m.seq, m.query.begin, m.query.end, m.db.begin,
                       m.db.end});
  }
  for (const auto& m : result.value()) {
    // Every reported match is a true match (correct distance, in truth).
    EXPECT_LE(m.distance, eps);
    EXPECT_DOUBLE_EQ(
        m.distance,
        dist.Compute(std::span<const char>(query_elems)
                         .subspan(static_cast<size_t>(m.query.begin),
                                  static_cast<size_t>(m.query.length())),
                     db.at(m.seq).Subsequence(m.db)));
    EXPECT_TRUE(truth_keys.count({m.seq, m.query.begin, m.query.end,
                                  m.db.begin, m.db.end}) > 0);
  }
  // No duplicates.
  std::set<std::array<int32_t, 5>> seen;
  for (const auto& m : result.value()) {
    EXPECT_TRUE(seen.insert({m.seq, m.query.begin, m.query.end, m.db.begin,
                             m.db.end})
                    .second);
  }
}

TEST(MatcherTypeITest, FindsPlantedExactCopy) {
  // Exact copies must be reported by Type I at epsilon 0.
  const std::string motif = "ACGTTGCAACGTTGCA";  // length 16
  SequenceDatabase<char> db;
  db.Add(MakeStringSequence("GGGGGGGG" + motif + "GGGGGGGG"));
  const Sequence<char> query =
      MakeStringSequence("TTTT" + motif + "TTTT");
  const LevenshteinDistance<char> dist;
  MatcherOptions options;
  options.lambda = 16;
  options.lambda0 = 2;
  auto matcher = std::move(SubsequenceMatcher<char>::Build(db, dist, options))
                     .ValueOrDie();
  auto result = matcher->RangeSearch(query.view(), 0.0);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  bool found = false;
  for (const auto& m : result.value()) {
    if (m.query == (Interval{4, 20}) && m.db == (Interval{8, 24})) {
      found = true;
      EXPECT_DOUBLE_EQ(m.distance, 0.0);
    }
  }
  EXPECT_TRUE(found);
}

TEST(MatcherOptionsTest, ZeroVerificationBudgetIsRejectedExplicitly) {
  // max_verifications = 0 is not "no limit": step 5 charges each
  // candidate pair before verifying it, so a zero budget would fail any
  // query with candidates. Build refuses it with a message saying so.
  Rng rng(31);
  SequenceDatabase<char> db;
  db.Add(Sequence<char>(RandomString(&rng, 40)));
  const LevenshteinDistance<char> dist;
  MatcherOptions options;
  options.max_verifications = 0;
  EXPECT_EQ(options.Validate().code(), StatusCode::kInvalidArgument);
  const auto built = SubsequenceMatcher<char>::Build(db, dist, options);
  ASSERT_FALSE(built.ok());
  EXPECT_EQ(built.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(built.status().ToString().find("max_verifications = 0"),
            std::string::npos)
      << built.status().ToString();
}

TEST(MatcherOptionsTest, NegativeVerificationBudgetIsRejectedExplicitly) {
  Rng rng(32);
  SequenceDatabase<char> db;
  db.Add(Sequence<char>(RandomString(&rng, 40)));
  const LevenshteinDistance<char> dist;
  MatcherOptions options;
  options.max_verifications = -5;
  EXPECT_EQ(options.Validate().code(), StatusCode::kInvalidArgument);
  const auto built = SubsequenceMatcher<char>::Build(db, dist, options);
  ASSERT_FALSE(built.ok());
  EXPECT_EQ(built.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(built.status().ToString().find("negative"), std::string::npos)
      << built.status().ToString();
}

TEST(MatcherOptionsTest, NegativeExecKnobsAreRejected) {
  MatcherOptions options;
  options.exec.num_verify_threads = -1;
  EXPECT_EQ(options.Validate().code(), StatusCode::kInvalidArgument);
  options.exec.num_verify_threads = 0;
  options.exec.num_threads = -2;
  EXPECT_EQ(options.Validate().code(), StatusCode::kInvalidArgument);
  options.exec.num_threads = 0;
  options.exec.num_shards = -3;
  EXPECT_EQ(options.Validate().code(), StatusCode::kInvalidArgument);
  options.exec.num_shards = 0;
  EXPECT_TRUE(options.Validate().ok());
}

TEST(MatcherTypeITest, VerificationCapReturnsOutOfRange) {
  Rng rng(987);
  SequenceDatabase<char> db;
  db.Add(Sequence<char>(RandomString(&rng, 60, "AC")));
  const auto query_elems = RandomString(&rng, 40, "AC");
  const LevenshteinDistance<char> dist;
  MatcherOptions options;
  options.lambda = 8;
  options.lambda0 = 2;
  options.max_verifications = 10;  // absurdly small
  auto matcher = std::move(SubsequenceMatcher<char>::Build(db, dist, options))
                     .ValueOrDie();
  const auto result = matcher->RangeSearch(query_elems, 4.0);
  EXPECT_EQ(result.status().code(), StatusCode::kOutOfRange);
}

// ---------------------------------------------------------------------------
// Type II.

TEST(MatcherTypeIITest, MatchesBruteForceOptimumInLosslessRegime) {
  Rng rng(111);
  const LevenshteinDistance<char> dist;
  MatcherOptions options;
  options.lambda = 8;
  options.lambda0 = 2;

  for (int trial = 0; trial < 4; ++trial) {
    SequenceDatabase<char> db;
    db.Add(Sequence<char>(RandomString(&rng, 34, "ACG")));
    const auto query_elems = RandomString(&rng, 22, "ACG");
    auto matcher =
        std::move(SubsequenceMatcher<char>::Build(db, dist, options))
            .ValueOrDie();

    const double eps = 2.0;
    const auto truth = BruteForceRangeSearch<char>(
        db, dist, query_elems, eps, options.lambda, options.lambda0);
    int32_t best_len = 0;
    for (const auto& m : truth) {
      best_len = std::max(best_len, m.query.length());
    }

    auto result = matcher->LongestMatch(query_elems, eps);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    if (best_len == 0) {
      EXPECT_FALSE(result.value().has_value());
    } else {
      ASSERT_TRUE(result.value().has_value());
      EXPECT_EQ(result.value()->query.length(), best_len)
          << "trial " << trial;
      EXPECT_LE(result.value()->distance, eps);
    }
  }
}

TEST(MatcherTypeIITest, FindsLongPlantedMotif) {
  // A long shared region (3x lambda) with one substitution per half.
  const std::string motif = "ACGTTGCATGCAATGCACGTTGCA";  // length 24
  std::string mutated = motif;
  mutated[5] = 'A';
  mutated[17] = 'C';
  SequenceDatabase<char> db;
  db.Add(MakeStringSequence("GGGGGG" + mutated + "GGGGGGGG"));
  const Sequence<char> query = MakeStringSequence("TT" + motif + "TTTT");
  const LevenshteinDistance<char> dist;
  MatcherOptions options;
  options.lambda = 8;
  options.lambda0 = 2;
  auto matcher = std::move(SubsequenceMatcher<char>::Build(db, dist, options))
                     .ValueOrDie();
  auto result = matcher->LongestMatch(query.view(), 2.0);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_TRUE(result.value().has_value());
  const SubsequenceMatch& m = *result.value();
  // The planted region is query [2, 26) vs db [6, 30).
  EXPECT_GE(m.query.length(), 20);
  EXPECT_TRUE(m.query.Overlaps(Interval{2, 26}));
  EXPECT_TRUE(m.db.Overlaps(Interval{6, 30}));
  EXPECT_LE(m.distance, 2.0);
}

TEST(MatcherTypeIITest, NoMatchBelowLambdaLength) {
  // The shared region is shorter than lambda, so Type II must return
  // nothing even though short similar fragments exist.
  SequenceDatabase<char> db;
  db.Add(MakeStringSequence("CCCCCCCCACGTCCCCCCCCCCCC"));
  const Sequence<char> query = MakeStringSequence("TTTTTTTTACGTTTTTTTTT");
  const LevenshteinDistance<char> dist;
  MatcherOptions options;
  options.lambda = 12;
  options.lambda0 = 2;
  auto matcher = std::move(SubsequenceMatcher<char>::Build(db, dist, options))
                     .ValueOrDie();
  auto result = matcher->LongestMatch(query.view(), 0.0);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result.value().has_value());
}

// ---------------------------------------------------------------------------
// Type III.

TEST(MatcherTypeIIITest, FindsNearMinimumDistanceMatch) {
  Rng rng(222);
  const LevenshteinDistance<char> dist;
  MatcherOptions options;
  options.lambda = 8;
  options.lambda0 = 2;

  for (int trial = 0; trial < 3; ++trial) {
    SequenceDatabase<char> db;
    db.Add(Sequence<char>(RandomString(&rng, 30, "ACG")));
    const auto query_elems = RandomString(&rng, 20, "ACG");
    auto matcher =
        std::move(SubsequenceMatcher<char>::Build(db, dist, options))
            .ValueOrDie();

    // Brute-force minimum over the lossless regime.
    const auto truth = BruteForceRangeSearch<char>(
        db, dist, query_elems, 2.0, options.lambda, options.lambda0);
    double best = kInfiniteDistance;
    for (const auto& m : truth) best = std::min(best, m.distance);

    auto result = matcher->NearestMatch(query_elems, 2.0, 1.0);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    if (best == kInfiniteDistance) {
      EXPECT_FALSE(result.value().has_value());
    } else {
      ASSERT_TRUE(result.value().has_value());
      // Type III is exact up to the epsilon increment (Section 7).
      EXPECT_GE(result.value()->distance, best);
      EXPECT_LE(result.value()->distance, best + 1.0) << "trial " << trial;
    }
  }
}

TEST(MatcherTypeIIITest, FindsPairInLastPartialIncrement) {
  // Regression: the growth loop must always run a final round at
  // epsilon_max, even when (epsilon_max - hi) is not a near-multiple of
  // the increment. The awkward increment below makes the pre-fix
  // schedule overshoot epsilon_max and skip the clamped last round,
  // returning nullopt for pairs whose distance falls in the final
  // partial increment. The property: whenever the Type II search finds
  // a pair at epsilon_max, Type III must find one too.
  Rng rng(333);
  const LevenshteinDistance<char> dist;
  MatcherOptions options;
  options.lambda = 8;
  options.lambda0 = 2;

  for (int trial = 0; trial < 4; ++trial) {
    SequenceDatabase<char> db;
    db.Add(Sequence<char>(RandomString(&rng, 40, "AC")));
    const auto query_elems = RandomString(&rng, 24, "AC");
    auto matcher =
        std::move(SubsequenceMatcher<char>::Build(db, dist, options))
            .ValueOrDie();

    const double eps_max = 5.0;
    auto longest = matcher->LongestMatch(query_elems, eps_max);
    ASSERT_TRUE(longest.ok()) << longest.status().ToString();
    auto nearest = matcher->NearestMatch(query_elems, eps_max, 0.7);
    ASSERT_TRUE(nearest.ok()) << nearest.status().ToString();
    EXPECT_EQ(nearest.value().has_value(), longest.value().has_value())
        << "trial " << trial;
    if (nearest.value().has_value()) {
      EXPECT_LE(nearest.value()->distance, eps_max);
    }
  }
}

TEST(MatcherTypeIIITest, ExactCopyGivesZeroDistance) {
  const std::string motif = "ACGTTGCAACGTTGCA";
  SequenceDatabase<char> db;
  db.Add(MakeStringSequence("GGGGGGGG" + motif + "GGGG"));
  const Sequence<char> query = MakeStringSequence("TT" + motif + "TT");
  const LevenshteinDistance<char> dist;
  MatcherOptions options;
  options.lambda = 16;
  options.lambda0 = 2;
  auto matcher = std::move(SubsequenceMatcher<char>::Build(db, dist, options))
                     .ValueOrDie();
  auto result = matcher->NearestMatch(query.view(), 4.0, 1.0);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_TRUE(result.value().has_value());
  EXPECT_DOUBLE_EQ(result.value()->distance, 0.0);
}

TEST(MatcherTypeIIITest, ReturnsNulloptWhenNothingWithinEpsilonMax) {
  SequenceDatabase<char> db;
  db.Add(MakeStringSequence("CCCCCCCCCCCCCCCCCCCCCCCC"));
  const Sequence<char> query = MakeStringSequence("AAAAAAAAAAAAAAAAAAAA");
  const LevenshteinDistance<char> dist;
  MatcherOptions options;
  options.lambda = 8;
  options.lambda0 = 2;
  auto matcher = std::move(SubsequenceMatcher<char>::Build(db, dist, options))
                     .ValueOrDie();
  auto result = matcher->NearestMatch(query.view(), 1.0, 0.5);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result.value().has_value());
}

TEST(MatcherTypeIIITest, RejectsBadIncrement) {
  SequenceDatabase<char> db;
  db.Add(MakeStringSequence("ACGTACGTACGTACGT"));
  const Sequence<char> query = MakeStringSequence("ACGTACGTACGT");
  const LevenshteinDistance<char> dist;
  MatcherOptions options;
  options.lambda = 8;
  options.lambda0 = 2;
  auto matcher = std::move(SubsequenceMatcher<char>::Build(db, dist, options))
                     .ValueOrDie();
  EXPECT_EQ(matcher->NearestMatch(query.view(), 2.0, 0.0).status().code(),
            StatusCode::kInvalidArgument);
}

// ---------------------------------------------------------------------------
// Index-backend independence: the pipeline must produce identical answers
// regardless of which index runs the filter.

TEST(MatcherBackendTest, AllIndexesGiveSameTypeIIAnswer) {
  Rng rng(333);
  SequenceDatabase<double> db;
  {
    std::vector<double> elems;
    for (int i = 0; i < 60; ++i) {
      elems.push_back(static_cast<double>(rng.NextBounded(6)));
    }
    db.Add(Sequence<double>(std::move(elems)));
  }
  std::vector<double> query_elems;
  for (int i = 0; i < 30; ++i) {
    query_elems.push_back(static_cast<double>(rng.NextBounded(6)));
  }
  const ErpDistance1D dist;

  std::optional<int32_t> reference_len;
  for (const IndexKind kind :
       {IndexKind::kReferenceNet, IndexKind::kCoverTree, IndexKind::kMvIndex,
        IndexKind::kLinearScan}) {
    MatcherOptions options;
    options.lambda = 10;
    options.lambda0 = 2;
    options.index_kind = kind;
    auto matcher =
        std::move(SubsequenceMatcher<double>::Build(db, dist, options))
            .ValueOrDie();
    auto result = matcher->LongestMatch(query_elems, 6.0);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    const int32_t len =
        result.value().has_value() ? result.value()->query.length() : -1;
    if (!reference_len.has_value()) {
      reference_len = len;
    } else {
      EXPECT_EQ(len, *reference_len) << "index kind differs";
    }
  }
}

}  // namespace
}  // namespace subseq
