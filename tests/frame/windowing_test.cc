#include "subseq/frame/windowing.h"

#include <gtest/gtest.h>

namespace subseq {
namespace {

TEST(WindowCatalogTest, PartitionBasic) {
  auto result = WindowCatalog::Partition({10, 25, 4}, 5);
  ASSERT_TRUE(result.ok());
  const WindowCatalog& c = result.value();
  EXPECT_EQ(c.window_length(), 5);
  EXPECT_EQ(c.num_sequences(), 3);
  EXPECT_EQ(c.num_windows(), 2 + 5 + 0);
  EXPECT_EQ(c.WindowsInSequence(0), 2);
  EXPECT_EQ(c.WindowsInSequence(1), 5);
  EXPECT_EQ(c.WindowsInSequence(2), 0);
}

TEST(WindowCatalogTest, WindowSpansAreAligned) {
  auto result = WindowCatalog::Partition({12}, 4);
  ASSERT_TRUE(result.ok());
  const WindowCatalog& c = result.value();
  ASSERT_EQ(c.num_windows(), 3);
  EXPECT_EQ(c.at(0).span, (Interval{0, 4}));
  EXPECT_EQ(c.at(1).span, (Interval{4, 8}));
  EXPECT_EQ(c.at(2).span, (Interval{8, 12}));
  EXPECT_EQ(c.at(1).seq, 0);
  EXPECT_EQ(c.at(1).index, 1);
}

TEST(WindowCatalogTest, TrailingRemainderDropped) {
  auto result = WindowCatalog::Partition({11}, 4);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().num_windows(), 2);
}

TEST(WindowCatalogTest, WindowIdRoundTrips) {
  auto result = WindowCatalog::Partition({8, 12, 8}, 4);
  ASSERT_TRUE(result.ok());
  const WindowCatalog& c = result.value();
  for (SeqId s = 0; s < c.num_sequences(); ++s) {
    for (int32_t w = 0; w < c.WindowsInSequence(s); ++w) {
      const ObjectId id = c.WindowId(s, w);
      EXPECT_EQ(c.at(id).seq, s);
      EXPECT_EQ(c.at(id).index, w);
    }
  }
}

TEST(WindowCatalogTest, ConsecutiveWithinSequenceOnly) {
  auto result = WindowCatalog::Partition({8, 8}, 4);
  ASSERT_TRUE(result.ok());
  const WindowCatalog& c = result.value();
  EXPECT_TRUE(c.AreConsecutive(0, 1));
  EXPECT_FALSE(c.AreConsecutive(1, 0));
  // Window 1 is the last of sequence 0; window 2 is the first of
  // sequence 1 — adjacent ids but not consecutive windows.
  EXPECT_FALSE(c.AreConsecutive(1, 2));
  EXPECT_TRUE(c.AreConsecutive(2, 3));
}

TEST(WindowCatalogTest, InvalidWindowLength) {
  EXPECT_EQ(WindowCatalog::Partition({10}, 0).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(WindowCatalog::Partition({10}, -3).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(WindowCatalogTest, NegativeLengthRejected) {
  EXPECT_EQ(WindowCatalog::Partition({10, -1}, 2).status().code(),
            StatusCode::kInvalidArgument);
}

// Lemma 2's geometric core: any subsequence of length >= 2l fully contains
// an aligned window — as long as it lies inside the windowed prefix of the
// sequence (the trailing remainder is shorter than l, so a subsequence of
// length >= 2l cannot fit inside it alone).
TEST(WindowCatalogTest, Lemma2EveryLongIntervalContainsAWindow) {
  const int32_t l = 5;
  const int32_t n = 47;
  auto result = WindowCatalog::Partition({n}, l);
  ASSERT_TRUE(result.ok());
  const WindowCatalog& c = result.value();
  for (int32_t begin = 0; begin + 2 * l <= n; ++begin) {
    for (int32_t end = begin + 2 * l; end <= n; ++end) {
      bool contains = false;
      for (ObjectId w = 0; w < c.num_windows() && !contains; ++w) {
        contains = Interval{begin, end}.Contains(c.at(w).span);
      }
      EXPECT_TRUE(contains) << "[" << begin << ", " << end << ")";
    }
  }
}

TEST(ExtractQuerySegmentsTest, CountMatchesFormula) {
  // (2*lambda0 + 1) lengths, |Q| - len + 1 offsets each.
  const int32_t q = 30;
  const int32_t l = 10;
  const int32_t lambda0 = 2;
  const auto segments = ExtractQuerySegments(q, l - lambda0, l + lambda0);
  int64_t expected = 0;
  for (int32_t len = l - lambda0; len <= l + lambda0; ++len) {
    expected += q - len + 1;
  }
  EXPECT_EQ(static_cast<int64_t>(segments.size()), expected);
  // Upper bound from the paper: at most (2*lambda0 + 1) * |Q| segments.
  EXPECT_LE(static_cast<int64_t>(segments.size()),
            static_cast<int64_t>(2 * lambda0 + 1) * q);
}

TEST(ExtractQuerySegmentsTest, AllSegmentsInBoundsAndRightLengths) {
  const auto segments = ExtractQuerySegments(20, 8, 12);
  for (const Interval& seg : segments) {
    EXPECT_GE(seg.begin, 0);
    EXPECT_LE(seg.end, 20);
    EXPECT_GE(seg.length(), 8);
    EXPECT_LE(seg.length(), 12);
  }
}

TEST(ExtractQuerySegmentsTest, QueryShorterThanSegments) {
  EXPECT_TRUE(ExtractQuerySegments(5, 8, 12).empty());
}

TEST(ExtractQuerySegmentsTest, SingleLengthSingleOffset) {
  const auto segments = ExtractQuerySegments(10, 10, 10);
  ASSERT_EQ(segments.size(), 1u);
  EXPECT_EQ(segments[0], (Interval{0, 10}));
}

}  // namespace
}  // namespace subseq
