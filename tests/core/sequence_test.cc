#include "subseq/core/sequence.h"

#include <gtest/gtest.h>

namespace subseq {
namespace {

TEST(IntervalTest, LengthAndEmpty) {
  EXPECT_EQ((Interval{2, 7}).length(), 5);
  EXPECT_TRUE((Interval{3, 3}).empty());
  EXPECT_FALSE((Interval{3, 4}).empty());
}

TEST(IntervalTest, Contains) {
  const Interval outer{0, 10};
  EXPECT_TRUE(outer.Contains(Interval{0, 10}));
  EXPECT_TRUE(outer.Contains(Interval{3, 5}));
  EXPECT_FALSE(outer.Contains(Interval{5, 11}));
  EXPECT_FALSE((Interval{3, 5}).Contains(outer));
}

TEST(IntervalTest, Overlaps) {
  EXPECT_TRUE((Interval{0, 5}).Overlaps(Interval{4, 8}));
  EXPECT_TRUE((Interval{4, 8}).Overlaps(Interval{0, 5}));
  EXPECT_FALSE((Interval{0, 5}).Overlaps(Interval{5, 8}));  // half-open
  EXPECT_FALSE((Interval{0, 2}).Overlaps(Interval{3, 4}));
}

TEST(SequenceTest, BasicAccess) {
  const Sequence<double> s({1.0, 2.0, 3.0}, "demo");
  EXPECT_EQ(s.size(), 3);
  EXPECT_FALSE(s.empty());
  EXPECT_DOUBLE_EQ(s[1], 2.0);
  EXPECT_EQ(s.label(), "demo");
}

TEST(SequenceTest, SubsequenceView) {
  const Sequence<double> s({1.0, 2.0, 3.0, 4.0, 5.0});
  const auto view = s.Subsequence(Interval{1, 4});
  ASSERT_EQ(view.size(), 3u);
  EXPECT_DOUBLE_EQ(view[0], 2.0);
  EXPECT_DOUBLE_EQ(view[2], 4.0);
}

TEST(SequenceTest, FullViewMatchesElements) {
  const Sequence<char> s = MakeStringSequence("HELLO");
  EXPECT_EQ(s.size(), 5);
  EXPECT_EQ(s.view()[0], 'H');
  EXPECT_EQ(s.view()[4], 'O');
}

TEST(SequenceTest, EqualityIgnoresLabel) {
  const Sequence<char> a = MakeStringSequence("AB", "one");
  const Sequence<char> b = MakeStringSequence("AB", "two");
  EXPECT_EQ(a, b);
}

TEST(SequenceDatabaseTest, AddAndRetrieve) {
  SequenceDatabase<char> db;
  EXPECT_TRUE(db.empty());
  const SeqId id0 = db.Add(MakeStringSequence("AAA"));
  const SeqId id1 = db.Add(MakeStringSequence("CCCCC"));
  EXPECT_EQ(id0, 0);
  EXPECT_EQ(id1, 1);
  EXPECT_EQ(db.size(), 2);
  EXPECT_EQ(db.at(1).size(), 5);
}

TEST(SequenceDatabaseTest, TotalLength) {
  SequenceDatabase<char> db;
  db.Add(MakeStringSequence("AAA"));
  db.Add(MakeStringSequence("CCCCC"));
  EXPECT_EQ(db.TotalLength(), 8);
}

TEST(SequenceDatabaseTest, RangeForIteration) {
  SequenceDatabase<double> db;
  db.Add(Sequence<double>({1.0}));
  db.Add(Sequence<double>({2.0, 3.0}));
  int count = 0;
  for (const auto& seq : db) count += seq.size();
  EXPECT_EQ(count, 3);
}

}  // namespace
}  // namespace subseq
