#include "subseq/core/histogram.h"

#include <gtest/gtest.h>

namespace subseq {
namespace {

TEST(HistogramTest, BucketEdges) {
  Histogram h(0.0, 10.0, 5);
  EXPECT_EQ(h.num_buckets(), 5);
  EXPECT_DOUBLE_EQ(h.bucket_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bucket_hi(0), 2.0);
  EXPECT_DOUBLE_EQ(h.bucket_mid(2), 5.0);
  EXPECT_DOUBLE_EQ(h.bucket_hi(4), 10.0);
}

TEST(HistogramTest, CountsLandInCorrectBuckets) {
  Histogram h(0.0, 10.0, 5);
  h.Add(0.5);   // bucket 0
  h.Add(3.0);   // bucket 1
  h.Add(9.99);  // bucket 4
  EXPECT_EQ(h.bucket_count(0), 1);
  EXPECT_EQ(h.bucket_count(1), 1);
  EXPECT_EQ(h.bucket_count(4), 1);
  EXPECT_EQ(h.total(), 3);
}

TEST(HistogramTest, OutOfRangeValuesClampToEdges) {
  Histogram h(0.0, 10.0, 5);
  h.Add(-5.0);
  h.Add(42.0);
  EXPECT_EQ(h.bucket_count(0), 1);
  EXPECT_EQ(h.bucket_count(4), 1);
  EXPECT_EQ(h.total(), 2);
}

TEST(HistogramTest, FractionSumsToOne) {
  Histogram h(0.0, 1.0, 4);
  for (int i = 0; i < 100; ++i) h.Add(i / 100.0);
  double total = 0.0;
  for (int b = 0; b < h.num_buckets(); ++b) total += h.Fraction(b);
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(HistogramTest, MeanAndVariance) {
  Histogram h(0.0, 10.0, 10);
  h.Add(2.0);
  h.Add(4.0);
  h.Add(6.0);
  EXPECT_NEAR(h.Mean(), 4.0, 1e-12);
  EXPECT_NEAR(h.Variance(), 8.0 / 3.0, 1e-12);
}

TEST(HistogramTest, MinMaxTracked) {
  Histogram h(0.0, 10.0, 10);
  h.Add(3.0);
  h.Add(7.5);
  h.Add(1.25);
  EXPECT_DOUBLE_EQ(h.Min(), 1.25);
  EXPECT_DOUBLE_EQ(h.Max(), 7.5);
}

TEST(HistogramTest, CdfMonotoneAndBounded) {
  Histogram h(0.0, 10.0, 10);
  for (int i = 0; i < 1000; ++i) h.Add((i % 100) / 10.0);
  double prev = -1.0;
  for (double x = 0.0; x <= 10.0; x += 0.5) {
    const double c = h.CdfAt(x);
    EXPECT_GE(c, prev);
    EXPECT_GE(c, 0.0);
    EXPECT_LE(c, 1.0);
    prev = c;
  }
  EXPECT_DOUBLE_EQ(h.CdfAt(-1.0), 0.0);
  EXPECT_DOUBLE_EQ(h.CdfAt(11.0), 1.0);
}

TEST(HistogramTest, EmptyHistogramIsSafe) {
  Histogram h(0.0, 1.0, 3);
  EXPECT_EQ(h.total(), 0);
  EXPECT_DOUBLE_EQ(h.Fraction(0), 0.0);
  EXPECT_DOUBLE_EQ(h.Mean(), 0.0);
  EXPECT_DOUBLE_EQ(h.CdfAt(0.5), 0.0);
}

TEST(HistogramTest, ToStringHasOneLinePerBucket) {
  Histogram h(0.0, 1.0, 3);
  h.Add(0.1);
  const std::string s = h.ToString();
  int newlines = 0;
  for (char c : s) newlines += (c == '\n');
  EXPECT_EQ(newlines, 3);
}

}  // namespace
}  // namespace subseq
