#include "subseq/core/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace subseq {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.NextU64() == b.NextU64());
  EXPECT_LT(same, 2);
}

TEST(RngTest, BoundedStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextBounded(13), 13u);
  }
}

TEST(RngTest, BoundedCoversAllResidues) {
  Rng rng(11);
  std::vector<int> seen(13, 0);
  for (int i = 0; i < 5000; ++i) ++seen[rng.NextBounded(13)];
  for (int count : seen) EXPECT_GT(count, 0);
}

TEST(RngTest, NextIntInclusiveRange) {
  Rng rng(5);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const int64_t v = rng.NextInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NextDoubleUnitInterval) {
  Rng rng(9);
  double mean = 0.0;
  for (int i = 0; i < 20000; ++i) {
    const double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
    mean += v;
  }
  mean /= 20000.0;
  EXPECT_NEAR(mean, 0.5, 0.02);
}

TEST(RngTest, GaussianMomentsRoughlyStandard) {
  Rng rng(13);
  double sum = 0.0;
  double sum_sq = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.NextGaussian();
    sum += v;
    sum_sq += v * v;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.03);
  EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(RngTest, BernoulliMatchesProbability) {
  Rng rng(17);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.NextBool(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(RngTest, SplitIsIndependentButDeterministic) {
  Rng a(99);
  Rng b(99);
  Rng as = a.Split();
  Rng bs = b.Split();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(as.NextU64(), bs.NextU64());
  // The split stream differs from the parent stream.
  Rng parent(99);
  Rng child = parent.Split();
  EXPECT_NE(parent.NextU64(), child.NextU64());
}

}  // namespace
}  // namespace subseq
