#include "subseq/core/status.h"

#include <gtest/gtest.h>

namespace subseq {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoriesCarryCodeAndMessage) {
  const Status s = Status::InvalidArgument("bad lambda");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad lambda");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad lambda");
}

TEST(StatusTest, AllCodesHaveNames) {
  EXPECT_EQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_EQ(StatusCodeToString(StatusCode::kInvalidArgument),
            "InvalidArgument");
  EXPECT_EQ(StatusCodeToString(StatusCode::kNotFound), "NotFound");
  EXPECT_EQ(StatusCodeToString(StatusCode::kAlreadyExists), "AlreadyExists");
  EXPECT_EQ(StatusCodeToString(StatusCode::kOutOfRange), "OutOfRange");
  EXPECT_EQ(StatusCodeToString(StatusCode::kUnimplemented), "Unimplemented");
  EXPECT_EQ(StatusCodeToString(StatusCode::kIoError), "IoError");
  EXPECT_EQ(StatusCodeToString(StatusCode::kInternal), "Internal");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::OK(), Status());
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
  EXPECT_FALSE(Status::NotFound("x") == Status::IoError("x"));
}

TEST(StatusTest, ReturnNotOkMacroPropagates) {
  auto fails = []() -> Status { return Status::Internal("boom"); };
  auto wrapper = [&]() -> Status {
    SUBSEQ_RETURN_NOT_OK(fails());
    return Status::OK();
  };
  EXPECT_EQ(wrapper().code(), StatusCode::kInternal);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(7);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 7);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("payload"));
  ASSERT_TRUE(r.ok());
  const std::string v = std::move(r).ValueOrDie();
  EXPECT_EQ(v, "payload");
}

TEST(ResultTest, MutableValueAccess) {
  Result<std::vector<int>> r(std::vector<int>{1, 2});
  r.value().push_back(3);
  EXPECT_EQ(r.value().size(), 3u);
}

}  // namespace
}  // namespace subseq
