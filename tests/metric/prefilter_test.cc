// The step-4 prunable-query plumbing: a LinearScan given a
// PrunableQueryFn skips exact evaluations the lower bound rules out
// while returning identical results, billing the full scan, and
// reporting the saved work in lower_bound_pruned — monolithic, sharded,
// single and batched alike.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <memory>
#include <vector>

#include "subseq/core/rng.h"
#include "subseq/exec/stats_sink.h"
#include "subseq/metric/linear_scan.h"
#include "subseq/metric/oracle.h"
#include "subseq/metric/sharded_index.h"
#include "testing/helpers.h"

namespace subseq {
namespace {

using ::subseq::testing::ScalarPointOracle;

constexpr int32_t kNumPoints = 400;

// Admissible bound over 1-D points: half the true |p - q| distance.
// Indexed by GLOBAL id — the scan adds lb_offset before calling, so
// this also pins the shard-offset composition.
class HalfDistanceBound final : public QueryLowerBound {
 public:
  HalfDistanceBound(std::shared_ptr<const std::vector<double>> points,
                    double q)
      : points_(std::move(points)), q_(q) {}

  void LowerBoundBlock(ObjectId begin, int32_t count, double cutoff,
                       double* out) const override {
    (void)cutoff;  // exact bounds; no abandoning needed
    for (int32_t i = 0; i < count; ++i) {
      out[i] =
          0.5 * std::fabs((*points_)[static_cast<size_t>(begin + i)] - q_);
    }
  }

 private:
  std::shared_ptr<const std::vector<double>> points_;
  double q_;
};

struct PrefilterFixture {
  PrefilterFixture() {
    Rng rng(91);
    auto pts = std::make_shared<std::vector<double>>();
    for (int32_t i = 0; i < kNumPoints; ++i) {
      pts->push_back(rng.NextDouble(0.0, 100.0));
    }
    points = pts;
    executed = std::make_shared<std::atomic<int64_t>>(0);
  }

  // The exact query function; every invocation is counted.
  std::function<double(ObjectId)> ExactFn(double q) const {
    auto pts = points;
    auto counter = executed;
    return [pts, counter, q](ObjectId id) {
      counter->fetch_add(1, std::memory_order_relaxed);
      return std::fabs((*pts)[static_cast<size_t>(id)] - q);
    };
  }

  QueryDistanceFn PlainQuery(double q) const {
    return QueryDistanceFn(ExactFn(q));
  }

  QueryDistanceFn PrunableQuery(double q) const {
    PrunableQueryFn p;
    p.fn = ExactFn(q);
    p.lower_bound = std::make_shared<HalfDistanceBound>(points, q);
    return QueryDistanceFn(std::move(p));
  }

  std::shared_ptr<const std::vector<double>> points;
  std::shared_ptr<std::atomic<int64_t>> executed;
};

TEST(PrefilterTest, IdenticalResultsFullBillingFewerExecutions) {
  PrefilterFixture f;
  const LinearScan scan(kNumPoints);
  const double q = 50.0, epsilon = 5.0;

  QueryStats plain_stats;
  const std::vector<ObjectId> plain =
      scan.RangeQuery(f.PlainQuery(q), epsilon, &plain_stats);
  const int64_t plain_executed = f.executed->exchange(0);

  QueryStats pruned_stats;
  const std::vector<ObjectId> pruned =
      scan.RangeQuery(f.PrunableQuery(q), epsilon, &pruned_stats);
  const int64_t pruned_executed = f.executed->exchange(0);

  EXPECT_EQ(plain, pruned);
  ASSERT_FALSE(plain.empty());
  // Billing is identical — pruned candidates stay billed — while the
  // executed count actually drops and the saving is reported.
  EXPECT_EQ(plain_stats.distance_computations, kNumPoints);
  EXPECT_EQ(pruned_stats.distance_computations, kNumPoints);
  EXPECT_EQ(plain_stats.lower_bound_pruned, 0);
  EXPECT_GT(pruned_stats.lower_bound_pruned, 0);
  EXPECT_EQ(plain_executed, kNumPoints);
  EXPECT_EQ(pruned_executed, kNumPoints - pruned_stats.lower_bound_pruned);
  EXPECT_LT(pruned_executed, plain_executed);
  EXPECT_EQ(plain_stats.result_count, pruned_stats.result_count);
}

TEST(PrefilterTest, NeverPrunesWithinEpsilon) {
  // With an exact-distance bound (not halved) every non-result would be
  // prunable; the padded cutoff must still keep every true result.
  PrefilterFixture f;
  const LinearScan scan(kNumPoints);
  for (const double epsilon : {0.0, 0.5, 3.0, 25.0}) {
    QueryStats plain_stats, pruned_stats;
    const std::vector<ObjectId> plain =
        scan.RangeQuery(f.PlainQuery(33.0), epsilon, &plain_stats);
    PrunableQueryFn p;
    p.fn = f.ExactFn(33.0);
    // Bound == exact distance: the tightest admissible bound.
    class ExactBound final : public QueryLowerBound {
     public:
      ExactBound(std::shared_ptr<const std::vector<double>> pts, double q)
          : pts_(std::move(pts)), q_(q) {}
      void LowerBoundBlock(ObjectId begin, int32_t count, double /*cutoff*/,
                           double* out) const override {
        for (int32_t i = 0; i < count; ++i) {
          out[i] = std::fabs((*pts_)[static_cast<size_t>(begin + i)] - q_);
        }
      }

     private:
      std::shared_ptr<const std::vector<double>> pts_;
      double q_;
    };
    p.lower_bound = std::make_shared<ExactBound>(f.points, 33.0);
    const std::vector<ObjectId> pruned =
        scan.RangeQuery(QueryDistanceFn(std::move(p)), epsilon,
                        &pruned_stats);
    EXPECT_EQ(plain, pruned) << "epsilon=" << epsilon;
  }
}

TEST(PrefilterTest, ShardedMatchesMonolithic) {
  PrefilterFixture f;
  const double q = 42.0, epsilon = 6.0;

  const LinearScan mono(kNumPoints);
  QueryStats mono_stats;
  const std::vector<ObjectId> mono_ids =
      mono.RangeQuery(f.PrunableQuery(q), epsilon, &mono_stats);
  const int64_t mono_executed = f.executed->exchange(0);

  const ScalarPointOracle oracle(*f.points);
  ShardedIndexOptions options;
  options.num_shards = 4;
  auto sharded = ShardedIndex::Build(
      oracle,
      [](const DistanceOracle& shard_oracle, int32_t) {
        return Result<std::unique_ptr<RangeIndex>>(
            std::make_unique<LinearScan>(shard_oracle.size()));
      },
      options);
  ASSERT_TRUE(sharded.ok());
  QueryStats sharded_stats;
  const std::vector<ObjectId> sharded_ids =
      sharded.value()->RangeQuery(f.PrunableQuery(q), epsilon,
                                  &sharded_stats);
  const int64_t sharded_executed = f.executed->exchange(0);

  // Pruning decisions are block- and shard-invariant, so everything —
  // ids, billing, pruned count, and even the executed call count —
  // matches the monolithic scan exactly.
  EXPECT_EQ(mono_ids, sharded_ids);
  EXPECT_EQ(mono_stats.distance_computations,
            sharded_stats.distance_computations);
  EXPECT_EQ(mono_stats.result_count, sharded_stats.result_count);
  EXPECT_EQ(mono_stats.lower_bound_pruned, sharded_stats.lower_bound_pruned);
  EXPECT_GT(mono_stats.lower_bound_pruned, 0);
  EXPECT_EQ(mono_executed, sharded_executed);
}

TEST(PrefilterTest, BatchMatchesSingleAndFeedsSink) {
  PrefilterFixture f;
  const LinearScan scan(kNumPoints);
  const double epsilon = 4.0;
  const std::vector<double> qs = {10.0, 50.0, 90.0};

  // References: one RangeQuery per query.
  std::vector<std::vector<ObjectId>> single(qs.size());
  std::vector<QueryStats> single_stats(qs.size());
  for (size_t i = 0; i < qs.size(); ++i) {
    single[i] =
        scan.RangeQuery(f.PrunableQuery(qs[i]), epsilon, &single_stats[i]);
  }

  for (const int32_t threads : {1, 8}) {
    // threads=8 > 3 queries exercises the intra-query range-sharded
    // scan path; threads=1 the per-query path. Both must agree with
    // the single-query reference exactly.
    std::vector<QueryDistanceFn> queries;
    for (const double q : qs) queries.push_back(f.PrunableQuery(q));
    ExecContext exec;
    exec.num_threads = threads;
    StatsSink sink;
    std::vector<QueryStats> per_query(qs.size());
    const std::vector<std::vector<ObjectId>> batched =
        scan.BatchRangeQuery(queries, epsilon, exec, &sink,
                             per_query.data());
    ASSERT_EQ(batched.size(), qs.size());
    int64_t total_pruned = 0;
    for (size_t i = 0; i < qs.size(); ++i) {
      EXPECT_EQ(batched[i], single[i]) << "threads=" << threads;
      EXPECT_EQ(per_query[i].distance_computations,
                single_stats[i].distance_computations);
      EXPECT_EQ(per_query[i].result_count, single_stats[i].result_count);
      EXPECT_EQ(per_query[i].lower_bound_pruned,
                single_stats[i].lower_bound_pruned);
      total_pruned += per_query[i].lower_bound_pruned;
    }
    EXPECT_GT(total_pruned, 0);
    EXPECT_EQ(sink.lower_bound_pruned(), total_pruned);
    EXPECT_EQ(sink.distance_computations(),
              static_cast<int64_t>(qs.size()) * kNumPoints);
  }
}

TEST(PrefilterTest, PayloadWithoutProviderScansUnpruned) {
  PrefilterFixture f;
  const LinearScan scan(kNumPoints);
  PrunableQueryFn p;
  p.fn = f.ExactFn(20.0);
  p.lower_bound = nullptr;  // payload present, provider absent
  QueryStats stats;
  scan.RangeQuery(QueryDistanceFn(std::move(p)), 3.0, &stats);
  EXPECT_EQ(stats.lower_bound_pruned, 0);
  EXPECT_EQ(f.executed->load(), kNumPoints);
}

}  // namespace
}  // namespace subseq
