#include "subseq/metric/serialization.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>

#include "subseq/core/rng.h"
#include "subseq/data/protein_gen.h"
#include "subseq/distance/levenshtein.h"
#include "subseq/frame/window_oracle.h"
#include "testing/helpers.h"

namespace subseq {
namespace {

using ::subseq::testing::ScalarPointOracle;

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

std::vector<double> RandomPoints(uint64_t seed, int n) {
  Rng rng(seed);
  std::vector<double> pts;
  for (int i = 0; i < n; ++i) pts.push_back(rng.NextDouble(0.0, 80.0));
  return pts;
}

TEST(SerializationTest, RoundTripPreservesQueries) {
  const ScalarPointOracle oracle(RandomPoints(1, 150));
  const ReferenceNet original = ReferenceNet::BuildAll(oracle);
  const std::string path = TempPath("net.refnet");
  ASSERT_TRUE(SaveReferenceNet(original, path).ok());

  auto loaded = LoadReferenceNet(oracle, path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().size(), original.size());
  EXPECT_FALSE(loaded.value().CheckInvariants().has_value());

  Rng rng(2);
  for (int q = 0; q < 20; ++q) {
    const double query_point = rng.NextDouble(0.0, 80.0);
    const double eps = rng.NextDouble(0.0, 10.0);
    auto expected =
        original.RangeQuery(oracle.QueryFrom(query_point), eps, nullptr);
    auto actual = loaded.value().RangeQuery(oracle.QueryFrom(query_point),
                                            eps, nullptr);
    std::sort(expected.begin(), expected.end());
    std::sort(actual.begin(), actual.end());
    EXPECT_EQ(actual, expected);
  }
  std::remove(path.c_str());
}

TEST(SerializationTest, RoundTripWithDuplicatesAndOptions) {
  std::vector<double> pts = RandomPoints(3, 80);
  pts.push_back(pts[0]);
  pts.push_back(pts[0]);
  const ScalarPointOracle oracle(pts);
  ReferenceNetOptions options;
  options.base_radius = 0.5;
  options.max_parents = 3;
  const ReferenceNet original = ReferenceNet::BuildAll(oracle, options);
  const std::string path = TempPath("net_opts.refnet");
  ASSERT_TRUE(SaveReferenceNet(original, path).ok());
  auto loaded = LoadReferenceNet(oracle, path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().options().base_radius, 0.5);
  EXPECT_EQ(loaded.value().options().max_parents, 3);
  EXPECT_EQ(loaded.value().size(), original.size());
  EXPECT_FALSE(loaded.value().CheckInvariants().has_value());
  std::remove(path.c_str());
}

TEST(SerializationTest, RoundTripOnProteinWindows) {
  ProteinGenerator gen(ProteinGenOptions{.mean_length = 100, .seed = 5});
  const auto db = gen.GenerateDatabaseWithWindows(120, 10);
  auto catalog = WindowCatalog::PartitionDatabase(db, 10);
  ASSERT_TRUE(catalog.ok());
  const LevenshteinDistance<char> dist;
  const WindowOracle<char> oracle(db, catalog.value(), dist);
  const ReferenceNet original = ReferenceNet::BuildAll(oracle);

  const std::string path = TempPath("net_proteins.refnet");
  ASSERT_TRUE(SaveReferenceNet(original, path).ok());
  auto loaded = LoadReferenceNet(oracle, path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  // Reloading costs zero build distance computations.
  EXPECT_EQ(loaded.value().build_stats().distance_computations, 0);
  EXPECT_FALSE(loaded.value().CheckInvariants().has_value());
  std::remove(path.c_str());
}

TEST(SerializationTest, EmptyNetRoundTrips) {
  const ScalarPointOracle oracle({});
  ReferenceNet net(oracle);
  const std::string path = TempPath("net_empty.refnet");
  ASSERT_TRUE(SaveReferenceNet(net, path).ok());
  auto loaded = LoadReferenceNet(oracle, path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().size(), 0);
  std::remove(path.c_str());
}

TEST(SerializationTest, RejectsWrongMagic) {
  const std::string path = TempPath("bogus.refnet");
  {
    std::ofstream out(path);
    out << "not a refnet\n";
  }
  const ScalarPointOracle oracle({1.0});
  EXPECT_EQ(LoadReferenceNet(oracle, path).status().code(),
            StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(SerializationTest, RejectsMissingFile) {
  const ScalarPointOracle oracle({1.0});
  EXPECT_EQ(LoadReferenceNet(oracle, "/nonexistent/net.refnet")
                .status()
                .code(),
            StatusCode::kIoError);
}

TEST(SerializationTest, RejectsWrongDataset) {
  // Save against one dataset, reload against shuffled points: the edge
  // distance spot-check must catch the mismatch.
  const auto pts = RandomPoints(7, 100);
  const ScalarPointOracle oracle(pts);
  const ReferenceNet net = ReferenceNet::BuildAll(oracle);
  const std::string path = TempPath("net_mismatch.refnet");
  ASSERT_TRUE(SaveReferenceNet(net, path).ok());

  std::vector<double> shuffled(pts.rbegin(), pts.rend());
  const ScalarPointOracle other(shuffled);
  const auto loaded = LoadReferenceNet(other, path);
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(SerializationTest, RejectsTruncatedFile) {
  const ScalarPointOracle oracle(RandomPoints(9, 50));
  const ReferenceNet net = ReferenceNet::BuildAll(oracle);
  const std::string path = TempPath("net_trunc.refnet");
  ASSERT_TRUE(SaveReferenceNet(net, path).ok());
  // Truncate the file in half.
  std::string contents;
  {
    std::ifstream in(path);
    std::getline(in, contents, '\0');
  }
  {
    std::ofstream out(path, std::ios::trunc);
    out << contents.substr(0, contents.size() / 2);
  }
  EXPECT_FALSE(LoadReferenceNet(oracle, path).ok());
  std::remove(path.c_str());
}

TEST(SerializationTest, LoadedNetSupportsInsertAndDelete) {
  const ScalarPointOracle oracle(RandomPoints(11, 100));
  ReferenceNet original(oracle);
  for (ObjectId id = 0; id < 80; ++id) {
    ASSERT_TRUE(original.Insert(id).ok());
  }
  const std::string path = TempPath("net_mutate.refnet");
  ASSERT_TRUE(SaveReferenceNet(original, path).ok());
  auto loaded = LoadReferenceNet(oracle, path);
  ASSERT_TRUE(loaded.ok());
  // Keep inserting the remaining objects and delete a few.
  for (ObjectId id = 80; id < 100; ++id) {
    ASSERT_TRUE(loaded.value().Insert(id).ok());
  }
  ASSERT_TRUE(loaded.value().Delete(5).ok());
  ASSERT_TRUE(loaded.value().Delete(50).ok());
  EXPECT_EQ(loaded.value().size(), 98);
  EXPECT_FALSE(loaded.value().CheckInvariants().has_value());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace subseq
