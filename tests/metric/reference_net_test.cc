#include "subseq/metric/reference_net.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "subseq/core/rng.h"
#include "subseq/metric/counting_oracle.h"
#include "subseq/metric/linear_scan.h"
#include "testing/helpers.h"

namespace subseq {
namespace {

using ::subseq::testing::PlanePointOracle;
using ::subseq::testing::ScalarPointOracle;

std::vector<double> RandomPoints(uint64_t seed, int n, double lo, double hi) {
  Rng rng(seed);
  std::vector<double> pts;
  pts.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) pts.push_back(rng.NextDouble(lo, hi));
  return pts;
}

TEST(ReferenceNetTest, EmptyNetAnswersEmpty) {
  const ScalarPointOracle oracle({});
  ReferenceNet net(oracle);
  QueryStats stats;
  EXPECT_TRUE(net.RangeQuery([](ObjectId) { return 0.0; }, 10.0, &stats)
                  .empty());
  EXPECT_EQ(stats.distance_computations, 0);
  EXPECT_FALSE(net.CheckInvariants().has_value());
}

TEST(ReferenceNetTest, SingleObject) {
  const ScalarPointOracle oracle({5.0});
  ReferenceNet net = ReferenceNet::BuildAll(oracle);
  EXPECT_EQ(net.size(), 1);
  auto hits = net.RangeQuery(oracle.QueryFrom(5.4), 0.5, nullptr);
  EXPECT_EQ(hits, (std::vector<ObjectId>{0}));
  EXPECT_TRUE(net.RangeQuery(oracle.QueryFrom(7.0), 0.5, nullptr).empty());
}

TEST(ReferenceNetTest, InsertRejectsDuplicateIds) {
  const ScalarPointOracle oracle({1.0, 2.0});
  ReferenceNet net(oracle);
  EXPECT_TRUE(net.Insert(0).ok());
  EXPECT_EQ(net.Insert(0).code(), StatusCode::kAlreadyExists);
}

TEST(ReferenceNetTest, InvariantsHoldAfterRandomInserts) {
  for (const uint64_t seed : {1u, 2u, 3u}) {
    const ScalarPointOracle oracle(RandomPoints(seed, 120, 0.0, 50.0));
    ReferenceNet net = ReferenceNet::BuildAll(oracle);
    const auto violation = net.CheckInvariants();
    EXPECT_FALSE(violation.has_value()) << "seed " << seed << ": "
                                        << *violation;
  }
}

TEST(ReferenceNetTest, InvariantsHoldOnClusteredData) {
  // Tight clusters exercise deep (negative) levels.
  Rng rng(99);
  std::vector<double> pts;
  for (int c = 0; c < 5; ++c) {
    const double center = 100.0 * c;
    for (int i = 0; i < 20; ++i) {
      pts.push_back(center + rng.NextDouble(-0.01, 0.01));
    }
  }
  const ScalarPointOracle oracle(pts);
  ReferenceNet net = ReferenceNet::BuildAll(oracle);
  const auto violation = net.CheckInvariants();
  EXPECT_FALSE(violation.has_value()) << *violation;
}

TEST(ReferenceNetTest, HandlesExactDuplicates) {
  std::vector<double> pts = {1.0, 1.0, 1.0, 5.0, 5.0, 9.0};
  const ScalarPointOracle oracle(pts);
  ReferenceNet net = ReferenceNet::BuildAll(oracle);
  EXPECT_EQ(net.size(), 6);
  const auto violation = net.CheckInvariants();
  EXPECT_FALSE(violation.has_value()) << *violation;
  auto hits = net.RangeQuery(oracle.QueryFrom(1.0), 0.0, nullptr);
  std::sort(hits.begin(), hits.end());
  EXPECT_EQ(hits, (std::vector<ObjectId>{0, 1, 2}));
}

TEST(ReferenceNetTest, RangeQueryMatchesLinearScan) {
  const ScalarPointOracle oracle(RandomPoints(7, 200, 0.0, 100.0));
  ReferenceNet net = ReferenceNet::BuildAll(oracle);
  LinearScan scan(oracle.size());
  Rng rng(8);
  for (int q = 0; q < 30; ++q) {
    const double query_point = rng.NextDouble(-10.0, 110.0);
    const double eps = rng.NextDouble(0.0, 20.0);
    auto expected = scan.RangeQuery(oracle.QueryFrom(query_point), eps,
                                    nullptr);
    auto actual = net.RangeQuery(oracle.QueryFrom(query_point), eps,
                                 nullptr);
    std::sort(expected.begin(), expected.end());
    std::sort(actual.begin(), actual.end());
    EXPECT_EQ(actual, expected) << "q=" << query_point << " eps=" << eps;
  }
}

TEST(ReferenceNetTest, RangeQueryMatchesLinearScan2D) {
  Rng rng(17);
  std::vector<Point2d> pts;
  for (int i = 0; i < 150; ++i) {
    pts.push_back(Point2d{rng.NextDouble(0, 40), rng.NextDouble(0, 40)});
  }
  const PlanePointOracle oracle(pts);
  ReferenceNet net = ReferenceNet::BuildAll(oracle);
  LinearScan scan(oracle.size());
  for (int q = 0; q < 20; ++q) {
    const Point2d query{rng.NextDouble(0, 40), rng.NextDouble(0, 40)};
    const double eps = rng.NextDouble(0.0, 15.0);
    auto expected = scan.RangeQuery(oracle.QueryFrom(query), eps, nullptr);
    auto actual = net.RangeQuery(oracle.QueryFrom(query), eps, nullptr);
    std::sort(expected.begin(), expected.end());
    std::sort(actual.begin(), actual.end());
    EXPECT_EQ(actual, expected);
  }
}

TEST(ReferenceNetTest, PrunesComparedToLinearScanOnLargeRange) {
  // With points spread across a wide domain and a small query radius, the
  // net must evaluate far fewer distances than the scan.
  const ScalarPointOracle oracle(RandomPoints(23, 500, 0.0, 1000.0));
  ReferenceNet net = ReferenceNet::BuildAll(oracle);
  QueryStats stats;
  net.RangeQuery(oracle.QueryFrom(500.0), 2.0, &stats);
  EXPECT_LT(stats.distance_computations, oracle.size() / 2);
}

TEST(ReferenceNetTest, MaxParentsIsRespected) {
  const ScalarPointOracle oracle(RandomPoints(31, 150, 0.0, 10.0));
  ReferenceNetOptions options;
  options.max_parents = 3;
  ReferenceNet net = ReferenceNet::BuildAll(oracle, options);
  const auto violation = net.CheckInvariants();
  EXPECT_FALSE(violation.has_value()) << *violation;
  const SpaceStats s = net.ComputeSpaceStats();
  EXPECT_LE(s.avg_parents, 3.0 + 1e-9);
}

TEST(ReferenceNetTest, MaxParentsReducesSpace) {
  // Skewed (tightly packed) data inflates parent lists; the cap reins the
  // space in — the paper's DFD-5 experiment (Fig. 6).
  const ScalarPointOracle oracle(RandomPoints(37, 300, 0.0, 6.0));
  ReferenceNet unconstrained = ReferenceNet::BuildAll(oracle);
  ReferenceNetOptions capped_options;
  capped_options.max_parents = 2;
  ReferenceNet capped = ReferenceNet::BuildAll(oracle, capped_options);
  EXPECT_LE(capped.ComputeSpaceStats().num_list_entries,
            unconstrained.ComputeSpaceStats().num_list_entries);
}

TEST(ReferenceNetTest, CappedNetStillAnswersExactly) {
  const ScalarPointOracle oracle(RandomPoints(41, 200, 0.0, 30.0));
  ReferenceNetOptions options;
  options.max_parents = 1;
  ReferenceNet net = ReferenceNet::BuildAll(oracle, options);
  LinearScan scan(oracle.size());
  Rng rng(42);
  for (int q = 0; q < 20; ++q) {
    const double query_point = rng.NextDouble(0.0, 30.0);
    const double eps = rng.NextDouble(0.0, 5.0);
    auto expected = scan.RangeQuery(oracle.QueryFrom(query_point), eps,
                                    nullptr);
    auto actual = net.RangeQuery(oracle.QueryFrom(query_point), eps,
                                 nullptr);
    std::sort(expected.begin(), expected.end());
    std::sort(actual.begin(), actual.end());
    EXPECT_EQ(actual, expected);
  }
}

TEST(ReferenceNetTest, BaseRadiusVariantsStayCorrect) {
  const ScalarPointOracle oracle(RandomPoints(47, 150, 0.0, 60.0));
  for (const double eps_prime : {0.25, 1.0, 4.0}) {
    ReferenceNetOptions options;
    options.base_radius = eps_prime;
    ReferenceNet net = ReferenceNet::BuildAll(oracle, options);
    EXPECT_FALSE(net.CheckInvariants().has_value());
    LinearScan scan(oracle.size());
    auto expected = scan.RangeQuery(oracle.QueryFrom(30.0), 4.0, nullptr);
    auto actual = net.RangeQuery(oracle.QueryFrom(30.0), 4.0, nullptr);
    std::sort(expected.begin(), expected.end());
    std::sort(actual.begin(), actual.end());
    EXPECT_EQ(actual, expected);
  }
}

TEST(ReferenceNetTest, DeleteRemovesObject) {
  const ScalarPointOracle oracle(RandomPoints(53, 80, 0.0, 40.0));
  ReferenceNet net = ReferenceNet::BuildAll(oracle);
  EXPECT_TRUE(net.Delete(10).ok());
  EXPECT_FALSE(net.Contains(10));
  EXPECT_EQ(net.size(), 79);
  EXPECT_EQ(net.Delete(10).code(), StatusCode::kNotFound);
  const auto violation = net.CheckInvariants();
  EXPECT_FALSE(violation.has_value()) << *violation;
}

TEST(ReferenceNetTest, QueriesStayExactAfterManyDeletes) {
  const auto points = RandomPoints(59, 120, 0.0, 50.0);
  const ScalarPointOracle oracle(points);
  ReferenceNet net = ReferenceNet::BuildAll(oracle);
  Rng rng(60);
  std::vector<bool> present(points.size(), true);
  for (int k = 0; k < 40; ++k) {
    const ObjectId victim =
        static_cast<ObjectId>(rng.NextBounded(points.size()));
    if (!present[static_cast<size_t>(victim)]) continue;
    ASSERT_TRUE(net.Delete(victim).ok());
    present[static_cast<size_t>(victim)] = false;
  }
  const auto violation = net.CheckInvariants();
  EXPECT_FALSE(violation.has_value()) << *violation;

  for (int q = 0; q < 15; ++q) {
    const double query_point = rng.NextDouble(0.0, 50.0);
    const double eps = rng.NextDouble(0.0, 8.0);
    std::vector<ObjectId> expected;
    for (size_t i = 0; i < points.size(); ++i) {
      if (present[i] && std::fabs(points[i] - query_point) <= eps) {
        expected.push_back(static_cast<ObjectId>(i));
      }
    }
    auto actual = net.RangeQuery(oracle.QueryFrom(query_point), eps,
                                 nullptr);
    std::sort(actual.begin(), actual.end());
    EXPECT_EQ(actual, expected);
  }
}

TEST(ReferenceNetTest, DeleteRootRebuilds) {
  const ScalarPointOracle oracle({10.0, 20.0, 30.0, 40.0});
  ReferenceNet net(oracle);
  ASSERT_TRUE(net.Insert(0).ok());  // becomes root
  ASSERT_TRUE(net.Insert(1).ok());
  ASSERT_TRUE(net.Insert(2).ok());
  ASSERT_TRUE(net.Insert(3).ok());
  ASSERT_TRUE(net.Delete(0).ok());
  EXPECT_EQ(net.size(), 3);
  EXPECT_FALSE(net.CheckInvariants().has_value());
  auto hits = net.RangeQuery(oracle.QueryFrom(25.0), 100.0, nullptr);
  std::sort(hits.begin(), hits.end());
  EXPECT_EQ(hits, (std::vector<ObjectId>{1, 2, 3}));
}

TEST(ReferenceNetTest, DeleteDuplicateKeepsRepresentative) {
  const ScalarPointOracle oracle({3.0, 3.0, 3.0, 8.0});
  ReferenceNet net = ReferenceNet::BuildAll(oracle);
  ASSERT_TRUE(net.Delete(1).ok());
  EXPECT_EQ(net.size(), 3);
  auto hits = net.RangeQuery(oracle.QueryFrom(3.0), 0.0, nullptr);
  std::sort(hits.begin(), hits.end());
  EXPECT_EQ(hits, (std::vector<ObjectId>{0, 2}));
  EXPECT_FALSE(net.CheckInvariants().has_value());
}

TEST(ReferenceNetTest, SpaceGrowsLinearly) {
  // Nodes + list entries should scale ~linearly in n (Fig. 5's claim).
  const auto points = RandomPoints(61, 800, 0.0, 200.0);
  const ScalarPointOracle small_oracle(
      std::vector<double>(points.begin(), points.begin() + 400));
  const ScalarPointOracle big_oracle(points);
  const ReferenceNet small = ReferenceNet::BuildAll(small_oracle);
  const ReferenceNet big = ReferenceNet::BuildAll(big_oracle);
  const SpaceStats s_small = small.ComputeSpaceStats();
  const SpaceStats s_big = big.ComputeSpaceStats();
  EXPECT_EQ(s_small.num_objects, 400);
  EXPECT_EQ(s_big.num_objects, 800);
  // Allow generous slack; the point is sub-quadratic growth.
  EXPECT_LT(s_big.num_list_entries, 4 * s_small.num_list_entries + 64);
}

TEST(ReferenceNetTest, BuildStatsCountComputations) {
  const ScalarPointOracle base(RandomPoints(67, 100, 0.0, 50.0));
  const CountingOracle counting(base);
  ReferenceNet net = ReferenceNet::BuildAll(counting);
  EXPECT_EQ(net.build_stats().distance_computations, counting.count());
  EXPECT_GT(counting.count(), 0);
  // Far fewer than the quadratic worst case.
  EXPECT_LT(counting.count(), 100 * 99 / 2);
}

TEST(ReferenceNetTest, QueryStatsCountComputations) {
  const ScalarPointOracle oracle(RandomPoints(71, 150, 0.0, 100.0));
  ReferenceNet net = ReferenceNet::BuildAll(oracle);
  int64_t calls = 0;
  const QueryDistanceFn counted =
      CountingQueryFn(oracle.QueryFrom(42.0), &calls);
  QueryStats stats;
  net.RangeQuery(counted, 3.0, &stats);
  EXPECT_EQ(stats.distance_computations, calls);
}

}  // namespace
}  // namespace subseq
