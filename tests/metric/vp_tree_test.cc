#include "subseq/metric/vp_tree.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "subseq/core/rng.h"
#include "subseq/metric/linear_scan.h"
#include "testing/helpers.h"

namespace subseq {
namespace {

using ::subseq::testing::ScalarPointOracle;

std::vector<double> RandomPoints(uint64_t seed, int n, double lo, double hi) {
  Rng rng(seed);
  std::vector<double> pts;
  for (int i = 0; i < n; ++i) pts.push_back(rng.NextDouble(lo, hi));
  return pts;
}

TEST(VpTreeTest, EmptyTree) {
  const ScalarPointOracle oracle({});
  VpTree tree(oracle);
  EXPECT_TRUE(tree.RangeQuery([](ObjectId) { return 0.0; }, 5.0, nullptr)
                  .empty());
  EXPECT_TRUE(
      tree.NearestNeighbors([](ObjectId) { return 0.0; }, 3, nullptr)
          .empty());
}

TEST(VpTreeTest, SingleObject) {
  const ScalarPointOracle oracle({4.0});
  VpTree tree(oracle);
  EXPECT_EQ(tree.RangeQuery(oracle.QueryFrom(4.5), 1.0, nullptr),
            (std::vector<ObjectId>{0}));
  EXPECT_TRUE(tree.RangeQuery(oracle.QueryFrom(9.0), 1.0, nullptr).empty());
}

TEST(VpTreeTest, RangeQueryMatchesLinearScan) {
  const ScalarPointOracle oracle(RandomPoints(3, 250, 0.0, 100.0));
  const VpTree tree(oracle);
  LinearScan scan(oracle.size());
  Rng rng(4);
  for (int q = 0; q < 30; ++q) {
    const double query_point = rng.NextDouble(-10.0, 110.0);
    const double eps = rng.NextDouble(0.0, 20.0);
    auto expected = scan.RangeQuery(oracle.QueryFrom(query_point), eps,
                                    nullptr);
    auto actual = tree.RangeQuery(oracle.QueryFrom(query_point), eps,
                                  nullptr);
    std::sort(expected.begin(), expected.end());
    std::sort(actual.begin(), actual.end());
    EXPECT_EQ(actual, expected);
  }
}

TEST(VpTreeTest, LeafSizeVariantsStayCorrect) {
  const ScalarPointOracle oracle(RandomPoints(5, 120, 0.0, 50.0));
  LinearScan scan(oracle.size());
  for (const int32_t leaf_size : {1, 4, 32, 200}) {
    VpTreeOptions options;
    options.leaf_size = leaf_size;
    const VpTree tree(oracle, options);
    auto expected = scan.RangeQuery(oracle.QueryFrom(25.0), 6.0, nullptr);
    auto actual = tree.RangeQuery(oracle.QueryFrom(25.0), 6.0, nullptr);
    std::sort(expected.begin(), expected.end());
    std::sort(actual.begin(), actual.end());
    EXPECT_EQ(actual, expected) << "leaf_size " << leaf_size;
  }
}

TEST(VpTreeTest, PrunesOnSmallRanges) {
  const ScalarPointOracle oracle(RandomPoints(7, 600, 0.0, 1000.0));
  const VpTree tree(oracle);
  QueryStats stats;
  tree.RangeQuery(oracle.QueryFrom(500.0), 2.0, &stats);
  EXPECT_LT(stats.distance_computations, oracle.size() / 2);
}

TEST(VpTreeTest, HandlesDuplicates) {
  const ScalarPointOracle oracle({5.0, 5.0, 5.0, 5.0, 9.0});
  const VpTree tree(oracle);
  auto hits = tree.RangeQuery(oracle.QueryFrom(5.0), 0.0, nullptr);
  std::sort(hits.begin(), hits.end());
  EXPECT_EQ(hits, (std::vector<ObjectId>{0, 1, 2, 3}));
}

TEST(VpTreeTest, DeterministicForSeed) {
  const auto pts = RandomPoints(11, 100, 0.0, 60.0);
  const ScalarPointOracle oracle(pts);
  const VpTree a(oracle);
  const VpTree b(oracle);
  EXPECT_EQ(a.build_stats().distance_computations,
            b.build_stats().distance_computations);
}

TEST(VpTreeTest, SpaceIsLinear) {
  const ScalarPointOracle small_oracle(RandomPoints(13, 300, 0.0, 100.0));
  const ScalarPointOracle big_oracle(RandomPoints(13, 600, 0.0, 100.0));
  const VpTree small(small_oracle);
  const VpTree big(big_oracle);
  EXPECT_LT(big.ComputeSpaceStats().approx_bytes,
            3 * small.ComputeSpaceStats().approx_bytes);
}

}  // namespace
}  // namespace subseq
