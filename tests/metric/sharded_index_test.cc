// ShardedIndex unit tests: contiguous partitioning (including
// non-divisible object counts), shard-order merge determinism,
// equivalence with the monolithic index, exact stats roll-up, kNN merge,
// aggregate space/build stats, build-failure propagation, and the
// enforced per-query stats-split contract of RangeIndex::BatchRangeQuery.

#include "subseq/metric/sharded_index.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "subseq/core/rng.h"
#include "subseq/exec/stats_sink.h"
#include "subseq/metric/linear_scan.h"
#include "subseq/metric/reference_net.h"
#include "subseq/metric/vp_tree.h"
#include "testing/helpers.h"

namespace subseq {
namespace {

using ::subseq::testing::RandomSeries;
using ::subseq::testing::ScalarPointOracle;

ShardIndexFactory LinearScanFactory() {
  return [](const DistanceOracle& oracle,
            int32_t) -> Result<std::unique_ptr<RangeIndex>> {
    return std::unique_ptr<RangeIndex>(
        std::make_unique<LinearScan>(oracle.size()));
  };
}

ShardIndexFactory VpTreeFactory() {
  return [](const DistanceOracle& oracle,
            int32_t) -> Result<std::unique_ptr<RangeIndex>> {
    return std::unique_ptr<RangeIndex>(std::make_unique<VpTree>(oracle));
  };
}

ShardIndexFactory ReferenceNetFactory() {
  return [](const DistanceOracle& oracle,
            int32_t) -> Result<std::unique_ptr<RangeIndex>> {
    auto net = std::make_unique<ReferenceNet>(oracle);
    for (ObjectId id = 0; id < oracle.size(); ++id) {
      SUBSEQ_RETURN_NOT_OK(net->Insert(id));
    }
    return std::unique_ptr<RangeIndex>(std::move(net));
  };
}

std::unique_ptr<ShardedIndex> BuildSharded(const DistanceOracle& oracle,
                                           const ShardIndexFactory& factory,
                                           int32_t num_shards,
                                           int32_t num_threads = 1) {
  ShardedIndexOptions options;
  options.num_shards = num_shards;
  options.exec.num_threads = num_threads;
  auto built = ShardedIndex::Build(oracle, factory, options);
  EXPECT_TRUE(built.ok()) << built.status().ToString();
  return std::move(built).ValueOrDie();
}

std::vector<ObjectId> Sorted(std::vector<ObjectId> ids) {
  std::sort(ids.begin(), ids.end());
  return ids;
}

TEST(ShardedIndexTest, PartitionsAreContiguousAndBalanced) {
  Rng rng(11);
  const ScalarPointOracle oracle(RandomSeries(&rng, 23, 0.0, 100.0));
  for (const int32_t k : {1, 3, 7, 23}) {
    const auto sharded = BuildSharded(oracle, LinearScanFactory(), k);
    ASSERT_EQ(sharded->num_shards(), k);
    EXPECT_EQ(sharded->size(), oracle.size());
    EXPECT_EQ(sharded->shard_begin(0), 0);
    EXPECT_EQ(sharded->shard_begin(k), oracle.size());
    for (int32_t s = 0; s < k; ++s) {
      const int32_t len =
          sharded->shard_begin(s + 1) - sharded->shard_begin(s);
      EXPECT_EQ(len, sharded->shard(s).size());
      // Even split: sizes differ by at most one, larger shards first.
      EXPECT_GE(len, oracle.size() / k);
      EXPECT_LE(len, oracle.size() / k + 1);
    }
  }
}

TEST(ShardedIndexTest, ShardCountClampsToObjectCount) {
  Rng rng(12);
  const ScalarPointOracle oracle(RandomSeries(&rng, 5, 0.0, 100.0));
  const auto sharded = BuildSharded(oracle, LinearScanFactory(), 64);
  EXPECT_EQ(sharded->num_shards(), 5);
  EXPECT_EQ(sharded->size(), 5);
}

TEST(ShardedIndexTest, NameReflectsShardCountAndInnerBackend) {
  Rng rng(13);
  const ScalarPointOracle oracle(RandomSeries(&rng, 12, 0.0, 100.0));
  const auto sharded = BuildSharded(oracle, VpTreeFactory(), 3);
  EXPECT_EQ(sharded->name(), "sharded[3]:vp-tree");
}

TEST(ShardedIndexTest, RangeQueryEquivalentToMonolithicIndex) {
  Rng rng(14);
  const ScalarPointOracle oracle(RandomSeries(&rng, 90, 0.0, 100.0));
  const LinearScan monolithic(oracle.size());
  for (const int32_t k : {2, 4, 7}) {
    const auto rn = BuildSharded(oracle, ReferenceNetFactory(), k);
    const auto scan = BuildSharded(oracle, LinearScanFactory(), k);
    for (const double center : {5.0, 37.5, 93.0}) {
      const QueryDistanceFn query = oracle.QueryFrom(center);
      const auto expected = monolithic.RangeQuery(query, 8.0, nullptr);
      // LinearScan shards emit ascending ids per shard; shard-order
      // concatenation of contiguous ranges is the full ascending order —
      // element-wise equal to the monolithic scan, not just set-equal.
      EXPECT_EQ(scan->RangeQuery(query, 8.0, nullptr), expected);
      EXPECT_EQ(Sorted(rn->RangeQuery(query, 8.0, nullptr)),
                Sorted(expected));
    }
  }
}

TEST(ShardedIndexTest, BatchMatchesSingleQueriesWithExactStatsRollup) {
  Rng rng(15);
  const ScalarPointOracle oracle(RandomSeries(&rng, 120, 0.0, 100.0));
  const auto sharded = BuildSharded(oracle, ReferenceNetFactory(), 5);

  std::vector<QueryDistanceFn> queries;
  for (int i = 0; i < 17; ++i) {
    queries.push_back(oracle.QueryFrom(rng.NextDouble(0.0, 100.0)));
  }

  std::vector<std::vector<ObjectId>> expected;
  std::vector<QueryStats> expected_stats(queries.size());
  int64_t total_computations = 0;
  int64_t total_results = 0;
  for (size_t q = 0; q < queries.size(); ++q) {
    expected.push_back(
        sharded->RangeQuery(queries[q], 6.0, &expected_stats[q]));
    total_computations += expected_stats[q].distance_computations;
    total_results += expected_stats[q].result_count;
  }

  for (const int32_t threads : {1, 8}) {
    StatsSink sink;
    std::vector<QueryStats> per_query(queries.size());
    const auto batched = sharded->BatchRangeQuery(
        queries, 6.0, ExecContext{threads}, &sink, per_query.data());
    EXPECT_EQ(batched, expected) << "threads=" << threads;
    EXPECT_EQ(sink.distance_computations(), total_computations);
    EXPECT_EQ(sink.results(), total_results);
    for (size_t q = 0; q < queries.size(); ++q) {
      EXPECT_EQ(per_query[q].distance_computations,
                expected_stats[q].distance_computations);
      EXPECT_EQ(per_query[q].result_count, expected_stats[q].result_count);
    }
  }
}

TEST(ShardedIndexTest, ShardedLinearScanBillsExactlyLikeMonolithic) {
  Rng rng(16);
  const ScalarPointOracle oracle(RandomSeries(&rng, 64, 0.0, 100.0));
  const LinearScan monolithic(oracle.size());
  const auto sharded = BuildSharded(oracle, LinearScanFactory(), 7);

  const QueryDistanceFn query = oracle.QueryFrom(42.0);
  QueryStats mono_stats;
  QueryStats shard_stats;
  const auto expected = monolithic.RangeQuery(query, 10.0, &mono_stats);
  EXPECT_EQ(sharded->RangeQuery(query, 10.0, &shard_stats), expected);
  // A scan computes every object's distance regardless of partitioning,
  // so even the computation counts agree exactly.
  EXPECT_EQ(shard_stats.distance_computations,
            mono_stats.distance_computations);
  EXPECT_EQ(shard_stats.result_count, mono_stats.result_count);
}

TEST(ShardedIndexTest, NearestNeighborsExactAcrossShards) {
  Rng rng(17);
  const ScalarPointOracle oracle(RandomSeries(&rng, 80, 0.0, 100.0));
  const LinearScan monolithic(oracle.size());
  const auto sharded = BuildSharded(oracle, VpTreeFactory(), 6);

  for (const double center : {1.0, 50.0, 99.0}) {
    const QueryDistanceFn query = oracle.QueryFrom(center);
    for (const int32_t k : {1, 5, 13}) {
      const auto expected = monolithic.NearestNeighbors(query, k, nullptr);
      const auto merged = sharded->NearestNeighbors(query, k, nullptr);
      ASSERT_EQ(merged.size(), expected.size());
      for (size_t i = 0; i < merged.size(); ++i) {
        // The distance multiset is optimal; id choice among exact ties is
        // index-dependent (the RangeIndex contract).
        EXPECT_DOUBLE_EQ(merged[i].distance, expected[i].distance);
      }
      // Sorted ascending.
      for (size_t i = 1; i < merged.size(); ++i) {
        EXPECT_LE(merged[i - 1].distance, merged[i].distance);
      }
    }
  }
}

TEST(ShardedIndexTest, AggregateSpaceAndBuildStats) {
  Rng rng(18);
  const ScalarPointOracle oracle(RandomSeries(&rng, 70, 0.0, 100.0));
  const auto sharded = BuildSharded(oracle, ReferenceNetFactory(), 4);

  const SpaceStats space = sharded->ComputeSpaceStats();
  EXPECT_EQ(space.num_objects, oracle.size());
  int64_t nodes = 0;
  int64_t build_computations = 0;
  for (int32_t s = 0; s < sharded->num_shards(); ++s) {
    nodes += sharded->shard(s).ComputeSpaceStats().num_nodes;
    build_computations +=
        sharded->shard(s).build_stats().distance_computations;
  }
  EXPECT_EQ(space.num_nodes, nodes);
  EXPECT_EQ(sharded->build_stats().distance_computations,
            build_computations);
  EXPECT_GT(build_computations, 0);
}

TEST(ShardedIndexTest, ParallelBuildMatchesSequentialBuild) {
  Rng rng(19);
  const ScalarPointOracle oracle(RandomSeries(&rng, 100, 0.0, 100.0));
  const auto sequential = BuildSharded(oracle, ReferenceNetFactory(), 5,
                                       /*num_threads=*/1);
  const auto parallel = BuildSharded(oracle, ReferenceNetFactory(), 5,
                                     /*num_threads=*/8);
  // Shards are independent closed problems: the thread budget must not
  // change what gets built.
  EXPECT_EQ(sequential->build_stats().distance_computations,
            parallel->build_stats().distance_computations);
  const QueryDistanceFn query = oracle.QueryFrom(33.0);
  EXPECT_EQ(sequential->RangeQuery(query, 7.0, nullptr),
            parallel->RangeQuery(query, 7.0, nullptr));
}

TEST(ShardedIndexTest, BuildFailurePropagatesFirstShardError) {
  Rng rng(20);
  const ScalarPointOracle oracle(RandomSeries(&rng, 30, 0.0, 100.0));
  ShardedIndexOptions options;
  options.num_shards = 3;
  const auto built = ShardedIndex::Build(
      oracle,
      [](const DistanceOracle& shard_oracle,
         int32_t shard) -> Result<std::unique_ptr<RangeIndex>> {
        if (shard >= 1) {
          return Status::Internal("shard " + std::to_string(shard) +
                                  " exploded");
        }
        return std::unique_ptr<RangeIndex>(
            std::make_unique<LinearScan>(shard_oracle.size()));
      },
      options);
  ASSERT_FALSE(built.ok());
  EXPECT_EQ(built.status().code(), StatusCode::kInternal);
  EXPECT_EQ(built.status().message(), "shard 1 exploded");
}

// ---------------------------------------------------------------------------
// The enforced per-query stats-split contract (the roll-up depends on it).

/// A broken backend: returns correct results but misreports result_count
/// in its per-query stats — exactly the corruption the CHECK in
/// RangeIndex::BatchRangeQuery exists to catch before it poisons
/// MatchServer billing or a shard roll-up.
class MisbilledScan final : public RangeIndex {
 public:
  explicit MisbilledScan(int32_t num_objects) : num_objects_(num_objects) {}

  std::string_view name() const override { return "misbilled-scan"; }
  int32_t size() const override { return num_objects_; }

  std::vector<ObjectId> RangeQuery(const QueryDistanceFn& query,
                                   double epsilon,
                                   QueryStats* stats) const override {
    std::vector<ObjectId> results;
    for (ObjectId id = 0; id < num_objects_; ++id) {
      if (query(id) <= epsilon) results.push_back(id);
    }
    if (stats != nullptr) {
      stats->distance_computations = num_objects_;
      stats->result_count = static_cast<int64_t>(results.size()) + 1;  // lie
    }
    return results;
  }

  std::vector<Neighbor> NearestNeighbors(const QueryDistanceFn&, int32_t,
                                         QueryStats*) const override {
    return {};
  }
  SpaceStats ComputeSpaceStats() const override { return {}; }
  BuildStats build_stats() const override { return {}; }

 private:
  int32_t num_objects_;
};

TEST(PerQueryStatsContractDeathTest, MisreportedResultCountAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  Rng rng(21);
  const ScalarPointOracle oracle(RandomSeries(&rng, 25, 0.0, 100.0));
  const MisbilledScan broken(oracle.size());
  std::vector<QueryDistanceFn> queries = {oracle.QueryFrom(10.0)};
  std::vector<QueryStats> per_query(queries.size());
  EXPECT_DEATH(
      broken.BatchRangeQuery(queries, 5.0, SequentialExec(), nullptr,
                             per_query.data()),
      "CHECK failed");
}

TEST(PerQueryStatsContractTest, HonestBackendsPassTheCheck) {
  // The positive side of the death test: every real backend satisfies
  // the enforced split (this would abort otherwise).
  Rng rng(22);
  const ScalarPointOracle oracle(RandomSeries(&rng, 40, 0.0, 100.0));
  const LinearScan scan(oracle.size());
  std::vector<QueryDistanceFn> queries = {oracle.QueryFrom(20.0),
                                          oracle.QueryFrom(80.0)};
  std::vector<QueryStats> per_query(queries.size());
  const auto results = scan.BatchRangeQuery(queries, 5.0, SequentialExec(),
                                            nullptr, per_query.data());
  for (size_t q = 0; q < queries.size(); ++q) {
    EXPECT_EQ(per_query[q].result_count,
              static_cast<int64_t>(results[q].size()));
  }
}

}  // namespace
}  // namespace subseq
