// k-nearest-neighbor correctness across every index: the returned
// distance multiset must equal the linear-scan ground truth, for point
// spaces and for real sequence-window oracles.

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "subseq/core/rng.h"
#include "subseq/data/protein_gen.h"
#include "subseq/distance/levenshtein.h"
#include "subseq/frame/window_oracle.h"
#include "subseq/metric/cover_tree.h"
#include "subseq/metric/knn.h"
#include "subseq/metric/linear_scan.h"
#include "subseq/metric/mv_index.h"
#include "subseq/metric/reference_net.h"
#include "subseq/metric/vp_tree.h"
#include "testing/helpers.h"

namespace subseq {
namespace {

using ::subseq::testing::ScalarPointOracle;

TEST(KnnCollectorTest, KeepsKBest) {
  KnnCollector c(3);
  c.Offer(0, 5.0);
  c.Offer(1, 1.0);
  c.Offer(2, 3.0);
  c.Offer(3, 2.0);
  c.Offer(4, 9.0);
  const auto out = c.Take();
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0], (Neighbor{1, 1.0}));
  EXPECT_EQ(out[1], (Neighbor{3, 2.0}));
  EXPECT_EQ(out[2], (Neighbor{2, 3.0}));
}

TEST(KnnCollectorTest, ThresholdTracksKthBest) {
  KnnCollector c(2);
  EXPECT_EQ(c.Threshold(), kInfiniteDistance);
  c.Offer(0, 4.0);
  EXPECT_EQ(c.Threshold(), kInfiniteDistance);
  c.Offer(1, 2.0);
  EXPECT_DOUBLE_EQ(c.Threshold(), 4.0);
  c.Offer(2, 1.0);
  EXPECT_DOUBLE_EQ(c.Threshold(), 2.0);
}

TEST(KnnCollectorTest, ZeroK) {
  KnnCollector c(0);
  c.Offer(0, 1.0);
  EXPECT_TRUE(c.Take().empty());
}

TEST(KnnCollectorTest, TiesPreferSmallerIds) {
  KnnCollector c(2);
  c.Offer(5, 1.0);
  c.Offer(3, 1.0);
  c.Offer(7, 1.0);
  const auto out = c.Take();
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].id, 3);
  EXPECT_EQ(out[1].id, 5);
}

std::unique_ptr<RangeIndex> MakeIndex(const std::string& kind,
                                      const DistanceOracle& oracle) {
  if (kind == "reference-net") {
    auto net = std::make_unique<ReferenceNet>(oracle);
    for (ObjectId id = 0; id < oracle.size(); ++id) {
      EXPECT_TRUE(net->Insert(id).ok());
    }
    return net;
  }
  if (kind == "cover-tree") {
    auto tree = std::make_unique<CoverTree>(oracle);
    for (ObjectId id = 0; id < oracle.size(); ++id) {
      EXPECT_TRUE(tree->Insert(id).ok());
    }
    return tree;
  }
  if (kind == "mv-index") return std::make_unique<MvIndex>(oracle);
  if (kind == "vp-tree") return std::make_unique<VpTree>(oracle);
  ADD_FAILURE() << "unknown kind " << kind;
  return nullptr;
}

class KnnEquivalence : public ::testing::TestWithParam<std::string> {};

TEST_P(KnnEquivalence, PointSpaceMatchesLinearScan) {
  Rng rng(99);
  std::vector<double> pts;
  for (int i = 0; i < 300; ++i) pts.push_back(rng.NextDouble(0.0, 100.0));
  const ScalarPointOracle oracle(pts);
  const auto index = MakeIndex(GetParam(), oracle);
  ASSERT_NE(index, nullptr);
  LinearScan scan(oracle.size());

  for (const int32_t k : {1, 3, 10, 50}) {
    for (int q = 0; q < 10; ++q) {
      const double query_point = rng.NextDouble(-10.0, 110.0);
      const auto expected =
          scan.NearestNeighbors(oracle.QueryFrom(query_point), k, nullptr);
      const auto actual =
          index->NearestNeighbors(oracle.QueryFrom(query_point), k, nullptr);
      ASSERT_EQ(actual.size(), expected.size()) << GetParam() << " k=" << k;
      for (size_t i = 0; i < actual.size(); ++i) {
        // Ties at the boundary may resolve to different ids; the distance
        // sequence must match exactly, and every returned distance must
        // be truthful.
        EXPECT_DOUBLE_EQ(actual[i].distance, expected[i].distance)
            << GetParam() << " k=" << k << " i=" << i;
        EXPECT_DOUBLE_EQ(oracle.QueryFrom(query_point)(actual[i].id),
                         actual[i].distance);
      }
    }
  }
}

TEST_P(KnnEquivalence, KLargerThanDatabaseReturnsEverything) {
  const ScalarPointOracle oracle({1.0, 5.0, 9.0});
  const auto index = MakeIndex(GetParam(), oracle);
  const auto out =
      index->NearestNeighbors(oracle.QueryFrom(4.0), 10, nullptr);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_DOUBLE_EQ(out[0].distance, 1.0);  // 5.0
  EXPECT_DOUBLE_EQ(out[2].distance, 5.0);  // 9.0
}

TEST_P(KnnEquivalence, ProteinWindowsUnderLevenshtein) {
  ProteinGenerator gen(ProteinGenOptions{.mean_length = 100, .seed = 17});
  const SequenceDatabase<char> db = gen.GenerateDatabaseWithWindows(150, 10);
  auto catalog = WindowCatalog::PartitionDatabase(db, 10);
  ASSERT_TRUE(catalog.ok());
  const LevenshteinDistance<char> dist;
  const WindowOracle<char> oracle(db, catalog.value(), dist);
  const auto index = MakeIndex(GetParam(), oracle);
  LinearScan scan(oracle.size());

  ProteinGenerator query_gen(ProteinGenOptions{.mean_length = 100,
                                               .seed = 18});
  for (int q = 0; q < 5; ++q) {
    const Sequence<char> query = query_gen.GenerateWithLength(10);
    const auto fn = oracle.SegmentQuery(query.view());
    const auto expected = scan.NearestNeighbors(fn, 5, nullptr);
    const auto actual = index->NearestNeighbors(fn, 5, nullptr);
    ASSERT_EQ(actual.size(), expected.size());
    for (size_t i = 0; i < actual.size(); ++i) {
      EXPECT_DOUBLE_EQ(actual[i].distance, expected[i].distance);
    }
  }
}

TEST_P(KnnEquivalence, PrunesComparedToScan) {
  Rng rng(123);
  std::vector<double> pts;
  for (int i = 0; i < 2000; ++i) pts.push_back(rng.NextDouble(0.0, 1000.0));
  const ScalarPointOracle oracle(pts);
  const auto index = MakeIndex(GetParam(), oracle);
  QueryStats stats;
  index->NearestNeighbors(oracle.QueryFrom(500.0), 5, &stats);
  EXPECT_LT(stats.distance_computations, oracle.size())
      << GetParam() << " did not prune at all";
}

INSTANTIATE_TEST_SUITE_P(AllIndexes, KnnEquivalence,
                         ::testing::Values("reference-net", "cover-tree",
                                           "mv-index", "vp-tree"),
                         [](const auto& info) {
                           std::string name = info.param;
                           std::replace(name.begin(), name.end(), '-', '_');
                           return name;
                         });

}  // namespace
}  // namespace subseq
