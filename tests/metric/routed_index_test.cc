// RoutedIndex unit tests: deterministic pivot/cell layout invariants,
// triangle-inequality routing soundness (never skips a true hit),
// equivalence with the monolithic index across inner backends, exact
// billing of routing distances plus probed-cell work, batch == single
// stats splits (including cells_probed / cells_skipped), kNN exactness,
// skew rebalancing, duplicate-driven early stop, build-failure
// propagation, and snapshot round-trip byte stability.

#include "subseq/metric/routed_index.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "subseq/core/rng.h"
#include "subseq/exec/stats_sink.h"
#include "subseq/metric/linear_scan.h"
#include "subseq/metric/reference_net.h"
#include "subseq/metric/vp_tree.h"
#include "subseq/snapshot/reader.h"
#include "subseq/snapshot/writer.h"
#include "testing/helpers.h"

namespace subseq {
namespace {

using ::subseq::testing::RandomSeries;
using ::subseq::testing::ScalarPointOracle;

ShardIndexFactory LinearScanFactory() {
  return [](const DistanceOracle& oracle,
            int32_t) -> Result<std::unique_ptr<RangeIndex>> {
    return std::unique_ptr<RangeIndex>(
        std::make_unique<LinearScan>(oracle.size()));
  };
}

ShardIndexFactory VpTreeFactory() {
  return [](const DistanceOracle& oracle,
            int32_t) -> Result<std::unique_ptr<RangeIndex>> {
    return std::unique_ptr<RangeIndex>(std::make_unique<VpTree>(oracle));
  };
}

ShardIndexFactory ReferenceNetFactory() {
  return [](const DistanceOracle& oracle,
            int32_t) -> Result<std::unique_ptr<RangeIndex>> {
    auto net = std::make_unique<ReferenceNet>(oracle);
    for (ObjectId id = 0; id < oracle.size(); ++id) {
      SUBSEQ_RETURN_NOT_OK(net->Insert(id));
    }
    return std::unique_ptr<RangeIndex>(std::move(net));
  };
}

std::unique_ptr<RoutedIndex> BuildRouted(const DistanceOracle& oracle,
                                         const ShardIndexFactory& factory,
                                         int32_t num_cells,
                                         int32_t num_threads = 1) {
  RoutedIndexOptions options;
  options.num_cells = num_cells;
  options.exec.num_threads = num_threads;
  auto built = RoutedIndex::Build(oracle, factory, options);
  EXPECT_TRUE(built.ok()) << built.status().ToString();
  return std::move(built).ValueOrDie();
}

std::vector<ObjectId> Sorted(std::vector<ObjectId> ids) {
  std::sort(ids.begin(), ids.end());
  return ids;
}

/// Every member of every cell sits within the cell's covering radius of
/// its pivot, the pivot lives in its own cell, and the member map is a
/// permutation of [0, n) ascending within each cell. These are the
/// invariants the skip rule's soundness proof leans on.
void CheckCellLayout(const RoutedIndex& routed,
                     const ScalarPointOracle& oracle) {
  std::vector<int> seen(static_cast<size_t>(oracle.size()), 0);
  for (int32_t c = 0; c < routed.num_cells(); ++c) {
    const auto members = routed.cell_members(c);
    ASSERT_FALSE(members.empty()) << "cell " << c;
    EXPECT_EQ(static_cast<int32_t>(members.size()), routed.cell(c).size());
    EXPECT_GE(routed.radius(c), 0.0);
    bool pivot_in_cell = false;
    for (size_t i = 0; i < members.size(); ++i) {
      if (i > 0) {
        EXPECT_LT(members[i - 1], members[i]);
      }
      ++seen[static_cast<size_t>(members[i])];
      if (members[i] == routed.pivot(c)) pivot_in_cell = true;
      EXPECT_LE(oracle.Distance(routed.pivot(c), members[i]),
                routed.radius(c))
          << "cell " << c << " member " << members[i];
    }
    EXPECT_TRUE(pivot_in_cell) << "cell " << c;
  }
  for (size_t i = 0; i < seen.size(); ++i) {
    EXPECT_EQ(seen[i], 1) << "object " << i;
  }
}

TEST(RoutedIndexTest, CellLayoutInvariantsHold) {
  Rng rng(31);
  const ScalarPointOracle oracle(RandomSeries(&rng, 60, 0.0, 100.0));
  for (const int32_t k : {1, 4, 7}) {
    const auto routed = BuildRouted(oracle, LinearScanFactory(), k);
    EXPECT_EQ(routed->requested_cells(), k);
    EXPECT_GE(routed->num_cells(), 1);
    EXPECT_EQ(routed->size(), oracle.size());
    CheckCellLayout(*routed, oracle);
  }
}

TEST(RoutedIndexTest, CellCountClampsToObjectCount) {
  Rng rng(32);
  const ScalarPointOracle oracle(RandomSeries(&rng, 5, 0.0, 100.0));
  const auto routed = BuildRouted(oracle, LinearScanFactory(), 64);
  EXPECT_EQ(routed->requested_cells(), 5);
  EXPECT_LE(routed->num_cells(), 5);
  EXPECT_EQ(routed->size(), 5);
  CheckCellLayout(*routed, oracle);
}

TEST(RoutedIndexTest, NameReflectsCellCountAndInnerBackend) {
  Rng rng(33);
  const ScalarPointOracle oracle(RandomSeries(&rng, 24, 0.0, 100.0));
  const auto routed = BuildRouted(oracle, VpTreeFactory(), 3);
  EXPECT_EQ(routed->name(), "routed[" +
                                std::to_string(routed->num_cells()) +
                                "]:vp-tree");
}

TEST(RoutedIndexTest, RangeQueryEquivalentToMonolithicIndex) {
  Rng rng(34);
  const ScalarPointOracle oracle(RandomSeries(&rng, 90, 0.0, 100.0));
  const LinearScan monolithic(oracle.size());
  for (const int32_t k : {1, 4, 7}) {
    const auto scan = BuildRouted(oracle, LinearScanFactory(), k);
    const auto vp = BuildRouted(oracle, VpTreeFactory(), k);
    const auto rn = BuildRouted(oracle, ReferenceNetFactory(), k);
    for (const double center : {-3.0, 5.0, 37.5, 93.0, 140.0}) {
      const QueryDistanceFn query = oracle.QueryFrom(center);
      const auto expected =
          Sorted(monolithic.RangeQuery(query, 8.0, nullptr));
      EXPECT_EQ(Sorted(scan->RangeQuery(query, 8.0, nullptr)), expected);
      EXPECT_EQ(Sorted(vp->RangeQuery(query, 8.0, nullptr)), expected);
      EXPECT_EQ(Sorted(rn->RangeQuery(query, 8.0, nullptr)), expected);
    }
  }
}

TEST(RoutedIndexTest, NeverSkipsACellContainingATrueHit) {
  // Property test: for random queries and epsilons, the routed hit set
  // must equal brute force exactly — in particular the skip rule
  // d(q, pivot) > r_c + cutoff(eps) must never drop a cell that holds a
  // true hit.
  Rng rng(35);
  const ScalarPointOracle oracle(RandomSeries(&rng, 150, 0.0, 100.0));
  const auto routed = BuildRouted(oracle, VpTreeFactory(), 6);
  for (int trial = 0; trial < 200; ++trial) {
    const double q = rng.NextDouble(-20.0, 120.0);
    const double eps = rng.NextDouble(0.0, 15.0);
    std::vector<ObjectId> expected;
    for (ObjectId id = 0; id < oracle.size(); ++id) {
      if (std::fabs(q - oracle.points()[static_cast<size_t>(id)]) <= eps) {
        expected.push_back(id);
      }
    }
    EXPECT_EQ(Sorted(routed->RangeQuery(oracle.QueryFrom(q), eps, nullptr)),
              expected)
        << "q=" << q << " eps=" << eps;
  }
}

TEST(RoutedIndexTest, BillsRoutingPlusProbedCellsExactly) {
  Rng rng(36);
  const ScalarPointOracle oracle(RandomSeries(&rng, 80, 0.0, 100.0));
  const auto routed = BuildRouted(oracle, LinearScanFactory(), 5);
  const int32_t cells = routed->num_cells();

  for (const double center : {2.0, 48.0, 97.0}) {
    const double eps = 4.0;
    // Recompute the routing decision from the published layout: a cell
    // is probed iff d(q, pivot) <= r_c + cutoff(eps).
    int64_t expected_computations = cells;  // one routing distance/cell
    int64_t expected_probed = 0;
    for (int32_t c = 0; c < cells; ++c) {
      const double pd = std::fabs(
          center -
          oracle.points()[static_cast<size_t>(routed->pivot(c))]);
      if (pd <= routed->radius(c) + LowerBoundPruneCutoff(eps)) {
        ++expected_probed;
        // LinearScan cells compute every member's distance.
        expected_computations += routed->cell(c).size();
      }
    }
    QueryStats stats;
    routed->RangeQuery(oracle.QueryFrom(center), eps, &stats);
    EXPECT_EQ(stats.distance_computations, expected_computations);
    EXPECT_EQ(stats.cells_probed, expected_probed);
    EXPECT_EQ(stats.cells_skipped, cells - expected_probed);
  }
}

TEST(RoutedIndexTest, TightEpsilonSkipsCellsAndSavesComputations) {
  // The point of routing: at a selective epsilon, some cells are
  // skipped, and the routed scan performs strictly fewer distance
  // computations than the monolithic scan.
  Rng rng(37);
  std::vector<double> points;
  for (int i = 0; i < 40; ++i) points.push_back(rng.NextDouble(0.0, 10.0));
  for (int i = 0; i < 40; ++i) points.push_back(rng.NextDouble(90.0, 100.0));
  const ScalarPointOracle oracle(points);
  const LinearScan monolithic(oracle.size());
  const auto routed = BuildRouted(oracle, LinearScanFactory(), 4);

  const QueryDistanceFn query = oracle.QueryFrom(5.0);
  QueryStats mono_stats;
  QueryStats routed_stats;
  const auto expected = Sorted(monolithic.RangeQuery(query, 2.0, &mono_stats));
  EXPECT_EQ(Sorted(routed->RangeQuery(query, 2.0, &routed_stats)), expected);
  EXPECT_GT(routed_stats.cells_skipped, 0);
  EXPECT_LT(routed_stats.distance_computations,
            mono_stats.distance_computations);
}

TEST(RoutedIndexTest, BatchMatchesSingleQueriesWithExactStatsRollup) {
  Rng rng(38);
  const ScalarPointOracle oracle(RandomSeries(&rng, 120, 0.0, 100.0));
  const auto routed = BuildRouted(oracle, ReferenceNetFactory(), 5);

  std::vector<QueryDistanceFn> queries;
  for (int i = 0; i < 17; ++i) {
    queries.push_back(oracle.QueryFrom(rng.NextDouble(0.0, 100.0)));
  }

  std::vector<std::vector<ObjectId>> expected;
  std::vector<QueryStats> expected_stats(queries.size());
  int64_t total_computations = 0;
  int64_t total_results = 0;
  int64_t total_probed = 0;
  int64_t total_skipped = 0;
  for (size_t q = 0; q < queries.size(); ++q) {
    expected.push_back(
        routed->RangeQuery(queries[q], 6.0, &expected_stats[q]));
    total_computations += expected_stats[q].distance_computations;
    total_results += expected_stats[q].result_count;
    total_probed += expected_stats[q].cells_probed;
    total_skipped += expected_stats[q].cells_skipped;
  }

  for (const int32_t threads : {1, 8}) {
    StatsSink sink;
    std::vector<QueryStats> per_query(queries.size());
    const auto batched = routed->BatchRangeQuery(
        queries, 6.0, ExecContext{threads}, &sink, per_query.data());
    EXPECT_EQ(batched, expected) << "threads=" << threads;
    EXPECT_EQ(sink.distance_computations(), total_computations);
    EXPECT_EQ(sink.results(), total_results);
    EXPECT_EQ(sink.cells_probed(), total_probed);
    EXPECT_EQ(sink.cells_skipped(), total_skipped);
    for (size_t q = 0; q < queries.size(); ++q) {
      EXPECT_EQ(per_query[q].distance_computations,
                expected_stats[q].distance_computations);
      EXPECT_EQ(per_query[q].result_count, expected_stats[q].result_count);
      EXPECT_EQ(per_query[q].cells_probed, expected_stats[q].cells_probed);
      EXPECT_EQ(per_query[q].cells_skipped,
                expected_stats[q].cells_skipped);
    }
  }
}

TEST(RoutedIndexTest, NearestNeighborsExactAcrossCells) {
  Rng rng(39);
  const ScalarPointOracle oracle(RandomSeries(&rng, 80, 0.0, 100.0));
  const LinearScan monolithic(oracle.size());
  const auto routed = BuildRouted(oracle, VpTreeFactory(), 6);

  for (const double center : {1.0, 50.0, 99.0}) {
    const QueryDistanceFn query = oracle.QueryFrom(center);
    for (const int32_t k : {1, 5, 13}) {
      const auto expected = monolithic.NearestNeighbors(query, k, nullptr);
      const auto merged = routed->NearestNeighbors(query, k, nullptr);
      ASSERT_EQ(merged.size(), expected.size());
      for (size_t i = 0; i < merged.size(); ++i) {
        // The distance multiset is optimal; id choice among exact ties
        // is index-dependent (the RangeIndex contract).
        EXPECT_DOUBLE_EQ(merged[i].distance, expected[i].distance);
      }
      for (size_t i = 1; i < merged.size(); ++i) {
        EXPECT_LE(merged[i - 1].distance, merged[i].distance);
      }
    }
  }
}

TEST(RoutedIndexTest, RebalancingSplitsOversizedCell) {
  // 97 points in a tight cluster plus 3 far outliers: farthest-point
  // pivots land on the outliers, leaving the cluster as one cell of 97
  // members — far beyond twice the mean — so the rebalance pass must
  // split it into additional cells, and answers must stay exact.
  Rng rng(40);
  std::vector<double> points = RandomSeries(&rng, 97, 0.0, 1.0);
  points.push_back(100.0);
  points.push_back(200.0);
  points.push_back(300.0);
  const ScalarPointOracle oracle(points);
  const auto routed = BuildRouted(oracle, LinearScanFactory(), 4);
  EXPECT_EQ(routed->requested_cells(), 4);
  EXPECT_GT(routed->num_cells(), 4);
  CheckCellLayout(*routed, oracle);

  const LinearScan monolithic(oracle.size());
  for (const double center : {0.5, 100.0, 250.0}) {
    const QueryDistanceFn query = oracle.QueryFrom(center);
    EXPECT_EQ(Sorted(routed->RangeQuery(query, 5.0, nullptr)),
              Sorted(monolithic.RangeQuery(query, 5.0, nullptr)));
  }
}

TEST(RoutedIndexTest, DuplicateHeavyCatalogStopsEarly) {
  // Every object at the same point: after the first pivot, every
  // remaining object sits at distance 0, so pivot selection stops at one
  // cell instead of manufacturing empty ones.
  const ScalarPointOracle oracle(std::vector<double>(20, 7.0));
  const auto routed = BuildRouted(oracle, LinearScanFactory(), 4);
  EXPECT_EQ(routed->num_cells(), 1);
  EXPECT_EQ(routed->radius(0), 0.0);
  CheckCellLayout(*routed, oracle);
  EXPECT_EQ(routed->RangeQuery(oracle.QueryFrom(7.0), 0.5, nullptr).size(),
            20u);
  EXPECT_TRUE(
      routed->RangeQuery(oracle.QueryFrom(30.0), 0.5, nullptr).empty());
}

TEST(RoutedIndexTest, ParallelBuildMatchesSequentialBuild) {
  Rng rng(41);
  const ScalarPointOracle oracle(RandomSeries(&rng, 100, 0.0, 100.0));
  const auto sequential = BuildRouted(oracle, ReferenceNetFactory(), 5,
                                      /*num_threads=*/1);
  const auto parallel = BuildRouted(oracle, ReferenceNetFactory(), 5,
                                    /*num_threads=*/8);
  // Pivot selection is a serial argmax over exact nearest distances and
  // cells are independent closed problems: the thread budget must not
  // change what gets built.
  ASSERT_EQ(parallel->num_cells(), sequential->num_cells());
  for (int32_t c = 0; c < sequential->num_cells(); ++c) {
    EXPECT_EQ(parallel->pivot(c), sequential->pivot(c));
    EXPECT_EQ(parallel->radius(c), sequential->radius(c));
  }
  EXPECT_EQ(sequential->build_stats().distance_computations,
            parallel->build_stats().distance_computations);
  const QueryDistanceFn query = oracle.QueryFrom(33.0);
  EXPECT_EQ(sequential->RangeQuery(query, 7.0, nullptr),
            parallel->RangeQuery(query, 7.0, nullptr));
}

TEST(RoutedIndexTest, AggregateSpaceAndBuildStats) {
  Rng rng(42);
  const ScalarPointOracle oracle(RandomSeries(&rng, 70, 0.0, 100.0));
  const auto routed = BuildRouted(oracle, ReferenceNetFactory(), 4);

  const SpaceStats space = routed->ComputeSpaceStats();
  EXPECT_EQ(space.num_objects, oracle.size());
  int64_t nodes = 0;
  int64_t inner_build = 0;
  for (int32_t c = 0; c < routed->num_cells(); ++c) {
    nodes += routed->cell(c).ComputeSpaceStats().num_nodes;
    inner_build += routed->cell(c).build_stats().distance_computations;
  }
  EXPECT_EQ(space.num_nodes, nodes);
  // Total build work = routing (pivot selection, assignment, rebalance)
  // plus the cells' inner builds — routing is never free.
  EXPECT_GT(routed->build_stats().distance_computations, inner_build);
  EXPECT_GT(inner_build, 0);
}

TEST(RoutedIndexTest, BuildFailurePropagatesFirstCellError) {
  Rng rng(43);
  const ScalarPointOracle oracle(RandomSeries(&rng, 30, 0.0, 100.0));
  RoutedIndexOptions options;
  options.num_cells = 3;
  const auto built = RoutedIndex::Build(
      oracle,
      [](const DistanceOracle& cell_oracle,
         int32_t cell) -> Result<std::unique_ptr<RangeIndex>> {
        if (cell >= 1) {
          return Status::Internal("cell " + std::to_string(cell) +
                                  " exploded");
        }
        return std::unique_ptr<RangeIndex>(
            std::make_unique<LinearScan>(cell_oracle.size()));
      },
      options);
  ASSERT_FALSE(built.ok());
  EXPECT_EQ(built.status().code(), StatusCode::kInternal);
  EXPECT_EQ(built.status().message(), "cell 1 exploded");
}

// ---------------------------------------------------------------------------
// Snapshot round-trip.

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

std::vector<char> ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<char>((std::istreambuf_iterator<char>(in)),
                           std::istreambuf_iterator<char>());
}

/// LinearScan cells carry no state beyond their size (which the routing
/// layout already pins down), so the inner saver writes nothing and the
/// loader rebuilds a scan over the cell oracle.
ShardIndexSaver ScanSaver() {
  return [](const RangeIndex&, SnapshotWriter&, const std::string&) {
    return Status::OK();
  };
}

ShardIndexLoader ScanLoader() {
  return [](const SnapshotFile&, const std::string&,
            const DistanceOracle& cell_oracle,
            int32_t) -> Result<std::unique_ptr<RangeIndex>> {
    return std::unique_ptr<RangeIndex>(
        std::make_unique<LinearScan>(cell_oracle.size()));
  };
}

Status SaveRoutedTo(const RoutedIndex& routed, const std::string& path) {
  auto writer = SnapshotWriter::Create(path);
  SUBSEQ_RETURN_NOT_OK(writer.status());
  SUBSEQ_RETURN_NOT_OK(
      routed.SaveSections(*writer.value(), "idx.", ScanSaver()));
  return writer.value()->Finish();
}

TEST(RoutedIndexSnapshotTest, RoundTripPreservesLayoutAndQueries) {
  Rng rng(44);
  const ScalarPointOracle oracle(RandomSeries(&rng, 75, 0.0, 100.0));
  const auto original = BuildRouted(oracle, LinearScanFactory(), 4);
  const std::string path = TempPath("routed_roundtrip.snap");
  ASSERT_TRUE(SaveRoutedTo(*original, path).ok());

  auto file = SnapshotFile::Open(path, SnapshotLoadMode::kEager);
  ASSERT_TRUE(file.ok()) << file.status().ToString();
  auto loaded = RoutedIndex::LoadSections(
      *file.value(), "idx.", oracle, original->requested_cells(),
      ScanLoader());
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  const RoutedIndex& reborn = *loaded.value();
  ASSERT_EQ(reborn.num_cells(), original->num_cells());
  EXPECT_EQ(reborn.requested_cells(), original->requested_cells());
  EXPECT_EQ(reborn.name(), original->name());
  for (int32_t c = 0; c < original->num_cells(); ++c) {
    EXPECT_EQ(reborn.pivot(c), original->pivot(c));
    EXPECT_EQ(reborn.radius(c), original->radius(c));
    ASSERT_EQ(reborn.cell_members(c).size(),
              original->cell_members(c).size());
    for (size_t i = 0; i < reborn.cell_members(c).size(); ++i) {
      EXPECT_EQ(reborn.cell_members(c)[i], original->cell_members(c)[i]);
    }
  }
  EXPECT_EQ(reborn.build_stats().distance_computations,
            original->build_stats().distance_computations);

  Rng qrng(45);
  for (int q = 0; q < 20; ++q) {
    const double center = qrng.NextDouble(-10.0, 110.0);
    const double eps = qrng.NextDouble(0.0, 12.0);
    QueryStats orig_stats;
    QueryStats load_stats;
    EXPECT_EQ(reborn.RangeQuery(oracle.QueryFrom(center), eps, &load_stats),
              original->RangeQuery(oracle.QueryFrom(center), eps,
                                   &orig_stats));
    EXPECT_EQ(load_stats.distance_computations,
              orig_stats.distance_computations);
    EXPECT_EQ(load_stats.cells_probed, orig_stats.cells_probed);
  }

  // Canonical encoding: saving the loaded index reproduces the file
  // byte for byte.
  const std::string resaved = TempPath("routed_roundtrip_resave.snap");
  ASSERT_TRUE(SaveRoutedTo(reborn, resaved).ok());
  EXPECT_EQ(ReadFileBytes(resaved), ReadFileBytes(path));
  std::remove(path.c_str());
  std::remove(resaved.c_str());
}

TEST(RoutedIndexSnapshotTest, LoadRejectsCellCountMismatch) {
  Rng rng(46);
  const ScalarPointOracle oracle(RandomSeries(&rng, 40, 0.0, 100.0));
  const auto original = BuildRouted(oracle, LinearScanFactory(), 4);
  const std::string path = TempPath("routed_mismatch.snap");
  ASSERT_TRUE(SaveRoutedTo(*original, path).ok());

  auto file = SnapshotFile::Open(path, SnapshotLoadMode::kEager);
  ASSERT_TRUE(file.ok()) << file.status().ToString();
  // Asking for a different cell count than the file was built with must
  // fail loudly: a loaded index must be what a fresh build under the
  // caller's options would produce.
  const auto loaded = RoutedIndex::LoadSections(
      *file.value(), "idx.", oracle, /*expected_cells=*/7, ScanLoader());
  EXPECT_FALSE(loaded.ok());
  std::remove(path.c_str());
}

TEST(RoutedIndexSnapshotTest, LoadRejectsOracleSizeMismatch) {
  Rng rng(47);
  const ScalarPointOracle oracle(RandomSeries(&rng, 40, 0.0, 100.0));
  const auto original = BuildRouted(oracle, LinearScanFactory(), 3);
  const std::string path = TempPath("routed_wrong_oracle.snap");
  ASSERT_TRUE(SaveRoutedTo(*original, path).ok());

  auto file = SnapshotFile::Open(path, SnapshotLoadMode::kEager);
  ASSERT_TRUE(file.ok()) << file.status().ToString();
  const ScalarPointOracle smaller(RandomSeries(&rng, 30, 0.0, 100.0));
  const auto loaded = RoutedIndex::LoadSections(
      *file.value(), "idx.", smaller, /*expected_cells=*/3, ScanLoader());
  EXPECT_FALSE(loaded.ok());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace subseq
