// Randomized stress test: interleaved inserts, deletes and range queries
// on the reference net, checked against a simple model (a set of live
// points + brute-force search) plus the structural invariants.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "subseq/core/rng.h"
#include "subseq/metric/reference_net.h"
#include "testing/helpers.h"

namespace subseq {
namespace {

using ::subseq::testing::ScalarPointOracle;

class ReferenceNetFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ReferenceNetFuzz, InterleavedOperationsStayExact) {
  Rng rng(GetParam());
  // Clustered + uniform mixture, with exact duplicates sprinkled in.
  std::vector<double> points;
  for (int i = 0; i < 200; ++i) {
    if (rng.NextBool(0.3)) {
      const double center = 20.0 * static_cast<double>(rng.NextBounded(5));
      points.push_back(center + rng.NextDouble(-0.2, 0.2));
    } else if (rng.NextBool(0.1) && !points.empty()) {
      points.push_back(points[rng.NextBounded(points.size())]);  // dup
    } else {
      points.push_back(rng.NextDouble(0.0, 100.0));
    }
  }
  const ScalarPointOracle oracle(points);

  ReferenceNetOptions options;
  options.max_parents =
      static_cast<int32_t>(rng.NextBounded(3)) * 2;  // 0, 2, or 4
  ReferenceNet net(oracle, options);
  std::vector<bool> live(points.size(), false);
  int64_t live_count = 0;

  for (int step = 0; step < 400; ++step) {
    const ObjectId id =
        static_cast<ObjectId>(rng.NextBounded(points.size()));
    const int op = static_cast<int>(rng.NextBounded(10));
    if (op < 6) {
      // Insert (possibly already present).
      const Status s = net.Insert(id);
      if (live[static_cast<size_t>(id)]) {
        EXPECT_EQ(s.code(), StatusCode::kAlreadyExists);
      } else {
        EXPECT_TRUE(s.ok());
        live[static_cast<size_t>(id)] = true;
        ++live_count;
      }
    } else if (op < 8) {
      // Delete (possibly absent).
      const Status s = net.Delete(id);
      if (live[static_cast<size_t>(id)]) {
        EXPECT_TRUE(s.ok()) << s.ToString();
        live[static_cast<size_t>(id)] = false;
        --live_count;
      } else {
        EXPECT_EQ(s.code(), StatusCode::kNotFound);
      }
    } else {
      // Range query against the model.
      const double q = rng.NextDouble(-5.0, 105.0);
      const double eps = rng.NextDouble(0.0, 15.0);
      std::vector<ObjectId> expected;
      for (size_t i = 0; i < points.size(); ++i) {
        if (live[i] && std::fabs(points[i] - q) <= eps) {
          expected.push_back(static_cast<ObjectId>(i));
        }
      }
      auto actual = net.RangeQuery(oracle.QueryFrom(q), eps, nullptr);
      std::sort(actual.begin(), actual.end());
      ASSERT_EQ(actual, expected) << "step " << step;
    }
    EXPECT_EQ(net.size(), live_count);
  }
  const auto violation = net.CheckInvariants();
  EXPECT_FALSE(violation.has_value()) << *violation;
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReferenceNetFuzz,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u));

}  // namespace
}  // namespace subseq
