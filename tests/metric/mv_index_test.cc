#include "subseq/metric/mv_index.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "subseq/core/rng.h"
#include "subseq/metric/linear_scan.h"
#include "testing/helpers.h"

namespace subseq {
namespace {

using ::subseq::testing::ScalarPointOracle;

std::vector<double> RandomPoints(uint64_t seed, int n, double lo, double hi) {
  Rng rng(seed);
  std::vector<double> pts;
  for (int i = 0; i < n; ++i) pts.push_back(rng.NextDouble(lo, hi));
  return pts;
}

TEST(MvIndexTest, SelectsRequestedNumberOfReferences) {
  const ScalarPointOracle oracle(RandomPoints(3, 100, 0.0, 50.0));
  MvIndexOptions options;
  options.num_references = 7;
  MvIndex index(oracle, options);
  EXPECT_EQ(index.references().size(), 7u);
}

TEST(MvIndexTest, FewerObjectsThanReferences) {
  const ScalarPointOracle oracle({1.0, 2.0});
  MvIndexOptions options;
  options.num_references = 10;
  MvIndex index(oracle, options);
  EXPECT_EQ(index.references().size(), 2u);
}

TEST(MvIndexTest, RangeQueryMatchesLinearScan) {
  const ScalarPointOracle oracle(RandomPoints(5, 200, 0.0, 100.0));
  MvIndex index(oracle);
  LinearScan scan(oracle.size());
  Rng rng(6);
  for (int q = 0; q < 30; ++q) {
    const double query_point = rng.NextDouble(-10.0, 110.0);
    const double eps = rng.NextDouble(0.0, 25.0);
    auto expected = scan.RangeQuery(oracle.QueryFrom(query_point), eps,
                                    nullptr);
    auto actual = index.RangeQuery(oracle.QueryFrom(query_point), eps,
                                   nullptr);
    std::sort(expected.begin(), expected.end());
    std::sort(actual.begin(), actual.end());
    EXPECT_EQ(actual, expected);
  }
}

TEST(MvIndexTest, NeverComputesMoreThanScanPlusReferences) {
  const ScalarPointOracle oracle(RandomPoints(7, 300, 0.0, 100.0));
  MvIndexOptions options;
  options.num_references = 5;
  MvIndex index(oracle, options);
  QueryStats stats;
  index.RangeQuery(oracle.QueryFrom(50.0), 5.0, &stats);
  EXPECT_LE(stats.distance_computations, 300 + 5);
}

TEST(MvIndexTest, PrunesOnSmallRanges) {
  const ScalarPointOracle oracle(RandomPoints(9, 500, 0.0, 1000.0));
  MvIndex index(oracle);
  QueryStats stats;
  index.RangeQuery(oracle.QueryFrom(500.0), 1.0, &stats);
  EXPECT_LT(stats.distance_computations, 250);
}

TEST(MvIndexTest, SpaceIsTableSized) {
  const ScalarPointOracle oracle(RandomPoints(11, 100, 0.0, 50.0));
  MvIndexOptions options;
  options.num_references = 5;
  MvIndex index(oracle, options);
  const SpaceStats s = index.ComputeSpaceStats();
  EXPECT_EQ(s.num_list_entries, 100 * 5);
  // 10x more references -> ~10x more space (the MV-50 vs MV-5 contrast).
  MvIndexOptions big_options;
  big_options.num_references = 50;
  MvIndex big(oracle, big_options);
  EXPECT_EQ(big.ComputeSpaceStats().num_list_entries, 100 * 50);
}

TEST(MvIndexTest, EmptyDatabase) {
  const ScalarPointOracle oracle({});
  MvIndex index(oracle);
  QueryStats stats;
  EXPECT_TRUE(index.RangeQuery([](ObjectId) { return 0.0; }, 1.0, &stats)
                  .empty());
  EXPECT_EQ(stats.distance_computations, 0);
}

TEST(MvIndexTest, DeterministicForFixedSeed) {
  const ScalarPointOracle oracle(RandomPoints(13, 150, 0.0, 70.0));
  MvIndexOptions options;
  options.seed = 1234;
  MvIndex a(oracle, options);
  MvIndex b(oracle, options);
  EXPECT_EQ(a.references(), b.references());
}

}  // namespace
}  // namespace subseq
