#include "subseq/metric/linear_scan.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "testing/helpers.h"

namespace subseq {
namespace {

using ::subseq::testing::ScalarPointOracle;

TEST(LinearScanTest, FindsAllWithinRange) {
  const ScalarPointOracle oracle({0.0, 1.0, 2.0, 3.0, 10.0});
  LinearScan scan(oracle.size());
  QueryStats stats;
  auto results = scan.RangeQuery(oracle.QueryFrom(1.5), 1.5, &stats);
  std::sort(results.begin(), results.end());
  EXPECT_EQ(results, (std::vector<ObjectId>{0, 1, 2, 3}));
  EXPECT_EQ(stats.distance_computations, 5);
  EXPECT_EQ(stats.result_count, 4);
}

TEST(LinearScanTest, EmptyDatabase) {
  LinearScan scan(0);
  QueryStats stats;
  const auto results = scan.RangeQuery([](ObjectId) { return 0.0; }, 1.0,
                                       &stats);
  EXPECT_TRUE(results.empty());
  EXPECT_EQ(stats.distance_computations, 0);
}

TEST(LinearScanTest, ZeroRangeMatchesExactOnly) {
  const ScalarPointOracle oracle({0.0, 1.0, 1.0, 2.0});
  LinearScan scan(oracle.size());
  auto results = scan.RangeQuery(oracle.QueryFrom(1.0), 0.0, nullptr);
  std::sort(results.begin(), results.end());
  EXPECT_EQ(results, (std::vector<ObjectId>{1, 2}));
}

TEST(LinearScanTest, AlwaysComputesEveryDistance) {
  const ScalarPointOracle oracle({0.0, 100.0, 200.0});
  LinearScan scan(oracle.size());
  QueryStats stats;
  scan.RangeQuery(oracle.QueryFrom(-50.0), 1.0, &stats);
  EXPECT_EQ(stats.distance_computations, 3);
  EXPECT_EQ(stats.result_count, 0);
}

TEST(LinearScanTest, SpaceStatsAreEmpty) {
  LinearScan scan(1000);
  const SpaceStats s = scan.ComputeSpaceStats();
  EXPECT_EQ(s.num_objects, 1000);
  EXPECT_EQ(s.approx_bytes, 0);
  EXPECT_EQ(scan.name(), "linear-scan");
}

}  // namespace
}  // namespace subseq
