#include "subseq/metric/cover_tree.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "subseq/core/rng.h"
#include "subseq/metric/linear_scan.h"
#include "testing/helpers.h"

namespace subseq {
namespace {

using ::subseq::testing::ScalarPointOracle;

std::vector<double> RandomPoints(uint64_t seed, int n, double lo, double hi) {
  Rng rng(seed);
  std::vector<double> pts;
  for (int i = 0; i < n; ++i) pts.push_back(rng.NextDouble(lo, hi));
  return pts;
}

TEST(CoverTreeTest, EmptyTree) {
  const ScalarPointOracle oracle({});
  CoverTree tree(oracle);
  EXPECT_TRUE(tree.RangeQuery([](ObjectId) { return 0.0; }, 5.0, nullptr)
                  .empty());
  EXPECT_FALSE(tree.CheckInvariants().has_value());
}

TEST(CoverTreeTest, InsertRejectsDuplicateIds) {
  const ScalarPointOracle oracle({1.0});
  CoverTree tree(oracle);
  EXPECT_TRUE(tree.Insert(0).ok());
  EXPECT_EQ(tree.Insert(0).code(), StatusCode::kAlreadyExists);
}

TEST(CoverTreeTest, InvariantsHoldAfterRandomInserts) {
  for (const uint64_t seed : {5u, 6u, 7u}) {
    const ScalarPointOracle oracle(RandomPoints(seed, 120, 0.0, 60.0));
    CoverTree tree = CoverTree::BuildAll(oracle);
    const auto violation = tree.CheckInvariants();
    EXPECT_FALSE(violation.has_value()) << "seed " << seed << ": "
                                        << *violation;
  }
}

TEST(CoverTreeTest, HandlesExactDuplicates) {
  const ScalarPointOracle oracle({2.0, 2.0, 2.0, 7.0});
  CoverTree tree = CoverTree::BuildAll(oracle);
  EXPECT_EQ(tree.size(), 4);
  auto hits = tree.RangeQuery(oracle.QueryFrom(2.0), 0.0, nullptr);
  std::sort(hits.begin(), hits.end());
  EXPECT_EQ(hits, (std::vector<ObjectId>{0, 1, 2}));
  EXPECT_FALSE(tree.CheckInvariants().has_value());
}

TEST(CoverTreeTest, RangeQueryMatchesLinearScan) {
  const ScalarPointOracle oracle(RandomPoints(11, 200, 0.0, 100.0));
  CoverTree tree = CoverTree::BuildAll(oracle);
  LinearScan scan(oracle.size());
  Rng rng(12);
  for (int q = 0; q < 30; ++q) {
    const double query_point = rng.NextDouble(-10.0, 110.0);
    const double eps = rng.NextDouble(0.0, 20.0);
    auto expected = scan.RangeQuery(oracle.QueryFrom(query_point), eps,
                                    nullptr);
    auto actual = tree.RangeQuery(oracle.QueryFrom(query_point), eps,
                                  nullptr);
    std::sort(expected.begin(), expected.end());
    std::sort(actual.begin(), actual.end());
    EXPECT_EQ(actual, expected);
  }
}

TEST(CoverTreeTest, EveryNodeHasExactlyOneParent) {
  const ScalarPointOracle oracle(RandomPoints(13, 150, 0.0, 80.0));
  CoverTree tree = CoverTree::BuildAll(oracle);
  const SpaceStats s = tree.ComputeSpaceStats();
  // In a tree, list entries == nodes - 1 (every non-root has one parent).
  EXPECT_EQ(s.num_list_entries, s.num_nodes - 1);
  EXPECT_DOUBLE_EQ(s.avg_parents, 1.0);
}

TEST(CoverTreeTest, SmallerThanUnconstrainedReferenceNetOnSkewedData) {
  // The paper: the reference net is ~3-4x the cover tree (PROTEINS),
  // because of multi-parenting. On tightly packed data the effect shows.
  const ScalarPointOracle oracle(RandomPoints(19, 300, 0.0, 8.0));
  CoverTree tree = CoverTree::BuildAll(oracle);
  EXPECT_FALSE(tree.CheckInvariants().has_value());
  EXPECT_EQ(tree.ComputeSpaceStats().avg_parents, 1.0);
}

TEST(CoverTreeTest, PrunesOnSmallRanges) {
  const ScalarPointOracle oracle(RandomPoints(21, 500, 0.0, 1000.0));
  CoverTree tree = CoverTree::BuildAll(oracle);
  QueryStats stats;
  tree.RangeQuery(oracle.QueryFrom(500.0), 2.0, &stats);
  EXPECT_LT(stats.distance_computations, oracle.size() / 2);
}

}  // namespace
}  // namespace subseq
