// Parameterized cross-index equivalence: every index must return exactly
// the linear-scan result set, across data distributions, epsilon scales,
// and real sequence-window oracles (Levenshtein / ERP / DFD).

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <tuple>

#include "subseq/core/rng.h"
#include "subseq/data/protein_gen.h"
#include "subseq/data/song_gen.h"
#include "subseq/distance/erp.h"
#include "subseq/distance/frechet.h"
#include "subseq/distance/levenshtein.h"
#include "subseq/frame/window_oracle.h"
#include "subseq/frame/windowing.h"
#include "subseq/metric/cover_tree.h"
#include "subseq/metric/linear_scan.h"
#include "subseq/metric/mv_index.h"
#include "subseq/metric/reference_net.h"
#include "subseq/metric/vp_tree.h"
#include "testing/helpers.h"

namespace subseq {
namespace {

using ::subseq::testing::ScalarPointOracle;

std::unique_ptr<RangeIndex> MakeIndex(const std::string& kind,
                                      const DistanceOracle& oracle) {
  if (kind == "reference-net") {
    auto net = std::make_unique<ReferenceNet>(oracle);
    for (ObjectId id = 0; id < oracle.size(); ++id) {
      EXPECT_TRUE(net->Insert(id).ok());
    }
    return net;
  }
  if (kind == "reference-net-5") {
    ReferenceNetOptions options;
    options.max_parents = 5;
    auto net = std::make_unique<ReferenceNet>(oracle, options);
    for (ObjectId id = 0; id < oracle.size(); ++id) {
      EXPECT_TRUE(net->Insert(id).ok());
    }
    return net;
  }
  if (kind == "cover-tree") {
    auto tree = std::make_unique<CoverTree>(oracle);
    for (ObjectId id = 0; id < oracle.size(); ++id) {
      EXPECT_TRUE(tree->Insert(id).ok());
    }
    return tree;
  }
  if (kind == "mv-index") {
    return std::make_unique<MvIndex>(oracle);
  }
  if (kind == "vp-tree") {
    return std::make_unique<VpTree>(oracle);
  }
  ADD_FAILURE() << "unknown index kind " << kind;
  return nullptr;
}

// ---------------------------------------------------------------------------
// Scalar points, three distributions x every index.

class PointEquivalence
    : public ::testing::TestWithParam<
          std::tuple<std::string, std::string>> {};

TEST_P(PointEquivalence, MatchesLinearScan) {
  const auto& [index_kind, distribution] = GetParam();
  Rng rng(2024);
  std::vector<double> pts;
  const int n = 180;
  for (int i = 0; i < n; ++i) {
    if (distribution == "uniform") {
      pts.push_back(rng.NextDouble(0.0, 100.0));
    } else if (distribution == "gaussian") {
      pts.push_back(50.0 + 10.0 * rng.NextGaussian());
    } else {  // clustered
      const double center = 25.0 * static_cast<double>(rng.NextBounded(4));
      pts.push_back(center + rng.NextDouble(-0.5, 0.5));
    }
  }
  const ScalarPointOracle oracle(pts);
  const auto index = MakeIndex(index_kind, oracle);
  ASSERT_NE(index, nullptr);
  LinearScan scan(oracle.size());

  for (const double eps : {0.0, 0.5, 2.0, 10.0, 50.0, 200.0}) {
    for (int q = 0; q < 5; ++q) {
      const double query_point = rng.NextDouble(-20.0, 120.0);
      auto expected = scan.RangeQuery(oracle.QueryFrom(query_point), eps,
                                      nullptr);
      auto actual = index->RangeQuery(oracle.QueryFrom(query_point), eps,
                                      nullptr);
      std::sort(expected.begin(), expected.end());
      std::sort(actual.begin(), actual.end());
      EXPECT_EQ(actual, expected)
          << index_kind << "/" << distribution << " eps=" << eps;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllIndexesAllDistributions, PointEquivalence,
    ::testing::Combine(::testing::Values("reference-net", "reference-net-5",
                                         "cover-tree", "mv-index",
                                         "vp-tree"),
                       ::testing::Values("uniform", "gaussian", "clustered")),
    [](const auto& info) {
      std::string name =
          std::get<0>(info.param) + "_" + std::get<1>(info.param);
      std::replace(name.begin(), name.end(), '-', '_');
      return name;
    });

// ---------------------------------------------------------------------------
// Real window oracles: protein windows under Levenshtein, song windows
// under ERP and DFD — the paper's actual filter workloads.

class WindowEquivalence : public ::testing::TestWithParam<std::string> {};

TEST_P(WindowEquivalence, ProteinWindowsLevenshtein) {
  ProteinGenerator gen(ProteinGenOptions{.mean_length = 100, .seed = 77});
  const SequenceDatabase<char> db = gen.GenerateDatabaseWithWindows(120, 10);
  auto catalog = WindowCatalog::PartitionDatabase(db, 10);
  ASSERT_TRUE(catalog.ok());
  const LevenshteinDistance<char> dist;
  const WindowOracle<char> oracle(db, catalog.value(), dist);
  const auto index = MakeIndex(GetParam(), oracle);
  LinearScan scan(oracle.size());

  ProteinGenerator query_gen(ProteinGenOptions{.mean_length = 100,
                                               .seed = 78});
  for (const double eps : {1.0, 3.0, 6.0}) {
    const Sequence<char> q = query_gen.GenerateWithLength(10);
    auto expected =
        scan.RangeQuery(oracle.SegmentQuery(q.view()), eps, nullptr);
    auto actual =
        index->RangeQuery(oracle.SegmentQuery(q.view()), eps, nullptr);
    std::sort(expected.begin(), expected.end());
    std::sort(actual.begin(), actual.end());
    EXPECT_EQ(actual, expected) << GetParam() << " eps=" << eps;
  }
}

TEST_P(WindowEquivalence, SongWindowsErpAndFrechet) {
  SongGenerator gen(SongGenOptions{.mean_length = 80, .seed = 99});
  const SequenceDatabase<double> db = gen.GenerateDatabaseWithWindows(100, 10);
  auto catalog = WindowCatalog::PartitionDatabase(db, 10);
  ASSERT_TRUE(catalog.ok());

  const ErpDistance1D erp;
  const FrechetDistance1D dfd;
  SongGenerator query_gen(SongGenOptions{.mean_length = 80, .seed = 100});
  const Sequence<double> q = query_gen.GenerateWithLength(10);

  {
    const WindowOracle<double> oracle(db, catalog.value(), erp);
    const auto index = MakeIndex(GetParam(), oracle);
    LinearScan scan(oracle.size());
    for (const double eps : {2.0, 8.0, 30.0}) {
      auto expected =
          scan.RangeQuery(oracle.SegmentQuery(q.view()), eps, nullptr);
      auto actual =
          index->RangeQuery(oracle.SegmentQuery(q.view()), eps, nullptr);
      std::sort(expected.begin(), expected.end());
      std::sort(actual.begin(), actual.end());
      EXPECT_EQ(actual, expected) << "erp eps=" << eps;
    }
  }
  {
    const WindowOracle<double> oracle(db, catalog.value(), dfd);
    const auto index = MakeIndex(GetParam(), oracle);
    LinearScan scan(oracle.size());
    for (const double eps : {1.0, 3.0, 6.0}) {
      auto expected =
          scan.RangeQuery(oracle.SegmentQuery(q.view()), eps, nullptr);
      auto actual =
          index->RangeQuery(oracle.SegmentQuery(q.view()), eps, nullptr);
      std::sort(expected.begin(), expected.end());
      std::sort(actual.begin(), actual.end());
      EXPECT_EQ(actual, expected) << "dfd eps=" << eps;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllIndexes, WindowEquivalence,
                         ::testing::Values("reference-net",
                                           "reference-net-5", "cover-tree",
                                           "mv-index", "vp-tree"),
                         [](const auto& info) {
                           std::string name = info.param;
                           std::replace(name.begin(), name.end(), '-', '_');
                           return name;
                         });

}  // namespace
}  // namespace subseq
