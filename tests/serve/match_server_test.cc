// Serving-layer tests. The headline is the cross-query determinism
// contract: N queries submitted concurrently to a MatchServer — where
// their segment filters are coalesced into shared BatchRangeQuery calls
// — produce element-wise identical MatchResults (matches AND stats) to
// the same queries run serially through a SubsequenceMatcher, per index
// backend, per domain, at exec thread budgets 1 and 8.

#include <gtest/gtest.h>

#include <atomic>
#include <limits>
#include <optional>
#include <span>
#include <thread>
#include <vector>

#include "subseq/data/protein_gen.h"
#include "subseq/data/song_gen.h"
#include "subseq/distance/frechet.h"
#include "subseq/distance/levenshtein.h"
#include "subseq/serve/coalescer.h"
#include "subseq/serve/future.h"
#include "subseq/serve/match_server.h"
#include "subseq/serve/request_queue.h"
#include "subseq/serve/segment_cache.h"

namespace subseq {
namespace {

void ExpectStatsEqual(const MatchQueryStats& a, const MatchQueryStats& b,
                      const std::string& where) {
  EXPECT_EQ(a.segments, b.segments) << where;
  EXPECT_EQ(a.filter_computations, b.filter_computations) << where;
  EXPECT_EQ(a.hits, b.hits) << where;
  EXPECT_EQ(a.chains, b.chains) << where;
  EXPECT_EQ(a.verifications, b.verifications) << where;
}

/// The serial ground truth: the same request answered by direct library
/// calls on a matcher built with the same options.
template <typename T>
MatchResult RunSerial(const SubsequenceMatcher<T>& m,
                      const MatchRequest<T>& request) {
  MatchResult result;
  const std::span<const T> query(request.query);
  switch (request.type) {
    case MatchQueryType::kRangeSearch: {
      auto r = m.RangeSearch(query, request.epsilon, &result.stats);
      result.status = r.status();
      if (r.ok()) result.matches = std::move(r).ValueOrDie();
      break;
    }
    case MatchQueryType::kLongestMatch: {
      auto r = m.LongestMatch(query, request.epsilon, &result.stats);
      result.status = r.status();
      if (r.ok()) result.best = std::move(r).ValueOrDie();
      break;
    }
    case MatchQueryType::kNearestMatch: {
      auto r = m.NearestMatch(query, request.epsilon_max,
                              request.epsilon_increment, &result.stats);
      result.status = r.status();
      if (r.ok()) result.best = std::move(r).ValueOrDie();
      break;
    }
  }
  return result;
}

/// A 24-element query cut from the first database sequence long enough.
template <typename T>
std::vector<T> ShortQuery(const SequenceDatabase<T>& db) {
  for (int32_t s = 0; s < db.size(); ++s) {
    if (db.at(s).size() >= 24) {
      const auto view = db.at(s).Subsequence(Interval{0, 24});
      return std::vector<T>(view.begin(), view.end());
    }
  }
  ADD_FAILURE() << "no sequence of length >= 24";
  return {};
}

/// A workload of mixed-type requests whose queries are (overlapping)
/// subsequences of database sequences, so every request has hits.
template <typename T>
std::vector<MatchRequest<T>> MakeWorkload(const SequenceDatabase<T>& db,
                                          double epsilon, int32_t count) {
  std::vector<MatchRequest<T>> requests;
  constexpr int32_t kQueryLength = 26;
  for (int32_t i = 0; i < count; ++i) {
    // Pick the next sequence long enough to cut a query from.
    int32_t s = i % db.size();
    while (db.at(s).size() <= kQueryLength) s = (s + 1) % db.size();
    const Sequence<T>& seq = db.at(s);
    const int32_t max_offset = seq.size() - kQueryLength;
    const int32_t offset = (i * 7) % max_offset;
    const auto view = seq.Subsequence(Interval{offset, offset + kQueryLength});
    MatchRequest<T> request;
    request.query.assign(view.begin(), view.end());
    switch (i % 3) {
      case 0:
        request.type = MatchQueryType::kRangeSearch;
        request.epsilon = epsilon;
        break;
      case 1:
        request.type = MatchQueryType::kLongestMatch;
        request.epsilon = epsilon;
        break;
      default:
        request.type = MatchQueryType::kNearestMatch;
        request.epsilon_max = 2.0 * epsilon + 1.0;
        request.epsilon_increment = 0.5;
        break;
    }
    requests.push_back(std::move(request));
  }
  return requests;
}

template <typename T>
void ExpectServerMatchesSerial(const SequenceDatabase<T>& db,
                               const SequenceDistance<T>& dist,
                               double epsilon) {
  const IndexKind kinds[] = {IndexKind::kLinearScan, IndexKind::kCoverTree};
  const std::vector<MatchRequest<T>> workload = MakeWorkload(db, epsilon, 12);

  for (const IndexKind kind : kinds) {
    for (const int32_t threads : {1, 8}) {
      SCOPED_TRACE("kind=" + std::to_string(static_cast<int>(kind)) +
                   " threads=" + std::to_string(threads));
      MatcherOptions matcher_options;
      matcher_options.lambda = 20;
      matcher_options.lambda0 = 2;
      matcher_options.index_kind = kind;
      matcher_options.exec.num_threads = threads;
      auto matcher = std::move(SubsequenceMatcher<T>::Build(
                                   db, dist, matcher_options))
                         .ValueOrDie();
      std::vector<MatchResult> serial;
      for (const MatchRequest<T>& request : workload) {
        serial.push_back(RunSerial(*matcher, request));
      }

      MatchServerOptions server_options;
      server_options.matcher = matcher_options;
      server_options.index_kinds = {kind};
      auto server = std::move(MatchServer<T>::Start(db, dist,
                                                    server_options))
                        .ValueOrDie();
      // Submit every request concurrently, one client thread each, so
      // arrivals actually pile up and coalesce.
      std::vector<Future<MatchResult>> futures(workload.size());
      std::vector<std::thread> clients;
      for (size_t i = 0; i < workload.size(); ++i) {
        clients.emplace_back([&, i] {
          MatchRequest<T> request = workload[i];  // copy: workload is shared
          futures[i] = server->Submit(std::move(request));
        });
      }
      for (std::thread& t : clients) t.join();

      for (size_t i = 0; i < workload.size(); ++i) {
        MatchResult served = futures[i].Get();
        const MatchResult& expected = serial[i];
        const std::string where = "request " + std::to_string(i);
        EXPECT_EQ(served.status, expected.status) << where;
        EXPECT_EQ(served.matches, expected.matches) << where;
        ASSERT_EQ(served.best.has_value(), expected.best.has_value())
            << where;
        if (served.best.has_value()) {
          EXPECT_EQ(*served.best, *expected.best) << where;
          EXPECT_EQ(served.best->distance, expected.best->distance) << where;
        }
        ExpectStatsEqual(served.stats, expected.stats, where);
      }
      // Sanity: the run exercised the cross-query path, not N solo calls.
      const ServeStats stats = server->stats();
      EXPECT_EQ(stats.queries_admitted,
                static_cast<int64_t>(workload.size()));
      EXPECT_GT(stats.filter_calls, 0);
      server->Shutdown();
    }
  }
}

TEST(MatchServerDeterminismTest, ProteinsMatchSerialAcrossConcurrency) {
  ProteinGenerator gen(ProteinGenOptions{.mean_length = 80, .seed = 901});
  const auto db = gen.GenerateDatabaseWithWindows(60, 10);
  const LevenshteinDistance<char> dist;
  ExpectServerMatchesSerial<char>(db, dist, 1.0);
}

TEST(MatchServerDeterminismTest, SongsMatchSerialAcrossConcurrency) {
  SongGenerator gen(SongGenOptions{.mean_length = 80, .seed = 902});
  const auto db = gen.GenerateDatabaseWithWindows(60, 10);
  const FrechetDistance1D dist;
  ExpectServerMatchesSerial<double>(db, dist, 0.5);
}

TEST(CoalescerTest, PlanGroupsByKindAndEpsilonInAdmissionOrder) {
  const std::vector<CoalesceKey> keys = {
      {IndexKind::kLinearScan, 1.0, true},    // 0 -> group 0
      {IndexKind::kCoverTree, 1.0, true},     // 1 -> group 1
      {IndexKind::kLinearScan, 1.0, true},    // 2 -> group 0
      {IndexKind::kLinearScan, 2.0, true},    // 3 -> group 2 (new epsilon)
      {IndexKind::kLinearScan, 1.0, false},   // 4 -> singleton group 3
      {IndexKind::kLinearScan, 1.0, true},    // 5 -> group 0
  };
  const std::vector<CoalesceGroup> groups = PlanCoalesce(keys);
  ASSERT_EQ(groups.size(), 4u);
  EXPECT_EQ(groups[0].members, (std::vector<size_t>{0, 2, 5}));
  EXPECT_EQ(groups[1].members, (std::vector<size_t>{1}));
  EXPECT_EQ(groups[2].members, (std::vector<size_t>{3}));
  EXPECT_EQ(groups[3].members, (std::vector<size_t>{4}));
  EXPECT_FALSE(groups[3].coalescable);
  size_t covered = 0;
  for (const CoalesceGroup& g : groups) covered += g.members.size();
  EXPECT_EQ(covered, keys.size());
}

TEST(CoalescerTest, SharedFilterEqualsPerQueryFilterSegments) {
  ProteinGenerator gen(ProteinGenOptions{.mean_length = 80, .seed = 903});
  const auto db = gen.GenerateDatabaseWithWindows(40, 8);
  const LevenshteinDistance<char> dist;
  MatcherOptions options;
  options.lambda = 20;
  options.lambda0 = 2;
  options.index_kind = IndexKind::kCoverTree;
  options.exec.num_threads = 8;
  auto matcher =
      std::move(SubsequenceMatcher<char>::Build(db, dist, options))
          .ValueOrDie();

  std::vector<std::vector<char>> queries;
  for (int32_t i = 0; i < 5; ++i) {
    int32_t s = i % db.size();
    while (db.at(s).size() < i + 24) s = (s + 1) % db.size();
    const auto view = db.at(s).Subsequence(Interval{i, i + 24});
    queries.emplace_back(view.begin(), view.end());
  }
  std::vector<std::span<const char>> views(queries.begin(), queries.end());

  const CoalescedFilter shared = CoalescedFilterSegments<char>(
      *matcher, std::span<const std::span<const char>>(views), 1.0);
  ASSERT_EQ(shared.hits.size(), queries.size());
  int64_t billed = 0;
  for (size_t i = 0; i < queries.size(); ++i) {
    MatchQueryStats solo_stats;
    const std::vector<SegmentHit> solo =
        matcher->FilterSegments(views[i], 1.0, &solo_stats);
    ASSERT_EQ(shared.hits[i].size(), solo.size()) << "query " << i;
    for (size_t h = 0; h < solo.size(); ++h) {
      EXPECT_EQ(shared.hits[i][h].window, solo[h].window);
      EXPECT_EQ(shared.hits[i][h].query_segment, solo[h].query_segment);
      EXPECT_EQ(shared.hits[i][h].distance, solo[h].distance);
    }
    ExpectStatsEqual(shared.stats[i], solo_stats,
                     "query " + std::to_string(i));
    billed += shared.stats[i].filter_computations;
  }
  // Billing: every member is billed its stand-alone cost; the executed
  // total is smaller because the overlapping queries share bit-identical
  // segments, which are issued once.
  EXPECT_EQ(billed, shared.billed_filter_computations);
  EXPECT_GE(shared.billed_filter_computations,
            shared.total_filter_computations);
  EXPECT_EQ(shared.segments_total, 5 * shared.stats[0].segments);
  EXPECT_LT(shared.segments_unique, shared.segments_total)
      << "overlapping cuts of one sequence must share segments";
}

TEST(CoalescerTest, DuplicateQueriesShareTheWholeFilter) {
  ProteinGenerator gen(ProteinGenOptions{.mean_length = 80, .seed = 907});
  const auto db = gen.GenerateDatabaseWithWindows(40, 8);
  const LevenshteinDistance<char> dist;
  MatcherOptions options;
  options.lambda = 20;
  options.index_kind = IndexKind::kLinearScan;
  auto matcher =
      std::move(SubsequenceMatcher<char>::Build(db, dist, options))
          .ValueOrDie();

  const std::vector<char> query = ShortQuery(db);
  const std::vector<std::span<const char>> views(3,
                                                 std::span<const char>(query));
  const CoalescedFilter shared = CoalescedFilterSegments<char>(
      *matcher, std::span<const std::span<const char>>(views), 1.0);
  // Three identical queries: unique segments are at most one query's
  // worth (less if the query repeats internally), the executed work is
  // at most a third of the billed work, and every member is still
  // billed (and answered) exactly as if alone.
  EXPECT_LE(shared.segments_unique, shared.stats[0].segments);
  EXPECT_GE(shared.billed_filter_computations,
            3 * shared.total_filter_computations);
  MatchQueryStats solo_stats;
  const auto solo = matcher->FilterSegments(
      std::span<const char>(query), 1.0, &solo_stats);
  for (int m = 0; m < 3; ++m) {
    EXPECT_EQ(shared.hits[m].size(), solo.size());
    ExpectStatsEqual(shared.stats[m], solo_stats,
                     "member " + std::to_string(m));
  }
}

/// Counts every distance evaluation delegated to the wrapped measure —
/// index traversals and per-hit distance fills alike — so tests can
/// assert exactly how much distance work a code path executed.
template <typename T>
class CountingDistance : public SequenceDistance<T> {
 public:
  explicit CountingDistance(const SequenceDistance<T>& inner)
      : inner_(inner) {}

  double Compute(std::span<const T> a, std::span<const T> b) const override {
    computes_.fetch_add(1, std::memory_order_relaxed);
    return inner_.Compute(a, b);
  }
  double ComputeBounded(std::span<const T> a, std::span<const T> b,
                        double upper_bound) const override {
    computes_.fetch_add(1, std::memory_order_relaxed);
    return inner_.ComputeBounded(a, b, upper_bound);
  }
  std::string_view name() const override { return inner_.name(); }
  bool is_metric() const override { return inner_.is_metric(); }
  bool is_consistent() const override { return inner_.is_consistent(); }

  int64_t computes() const {
    return computes_.load(std::memory_order_relaxed);
  }

 private:
  const SequenceDistance<T>& inner_;
  mutable std::atomic<int64_t> computes_{0};
};

TEST(CoalescerTest, DistanceWorkIsIndependentOfOwnerCount) {
  // The tentpole invariant for the shared per-hit distance pass: N
  // owners of one bit-identical segment cost exactly the same executed
  // distance work as one owner — index traversal once per unique
  // segment, per-hit distance fill once per unique segment.
  ProteinGenerator gen(ProteinGenOptions{.mean_length = 80, .seed = 911});
  const auto db = gen.GenerateDatabaseWithWindows(40, 8);
  const LevenshteinDistance<char> inner;
  const CountingDistance<char> dist(inner);
  MatcherOptions options;
  options.lambda = 20;
  options.index_kind = IndexKind::kLinearScan;
  auto matcher =
      std::move(SubsequenceMatcher<char>::Build(db, dist, options))
          .ValueOrDie();

  const std::vector<char> query = ShortQuery(db);
  const auto run = [&](size_t owners) {
    const std::vector<std::span<const char>> views(
        owners, std::span<const char>(query));
    const int64_t before = dist.computes();
    const CoalescedFilter shared = CoalescedFilterSegments<char>(
        *matcher, std::span<const std::span<const char>>(views), 1.0);
    EXPECT_EQ(shared.hits.size(), owners);
    return dist.computes() - before;
  };
  const int64_t solo_work = run(1);
  EXPECT_GT(solo_work, 0);
  EXPECT_EQ(run(3), solo_work);
}

TEST(CoalescerTest, WarmCacheCallExecutesNothingAndIsBitIdentical) {
  ProteinGenerator gen(ProteinGenOptions{.mean_length = 80, .seed = 912});
  const auto db = gen.GenerateDatabaseWithWindows(40, 8);
  const LevenshteinDistance<char> inner;
  const CountingDistance<char> dist(inner);
  MatcherOptions options;
  options.lambda = 20;
  options.index_kind = IndexKind::kCoverTree;
  auto matcher =
      std::move(SubsequenceMatcher<char>::Build(db, dist, options))
          .ValueOrDie();

  std::vector<std::vector<char>> queries;
  for (int32_t i = 0; i < 3; ++i) {
    int32_t s = i % db.size();
    while (db.at(s).size() < i + 24) s = (s + 1) % db.size();
    const auto view = db.at(s).Subsequence(Interval{i, i + 24});
    queries.emplace_back(view.begin(), view.end());
  }
  const std::vector<std::span<const char>> views(queries.begin(),
                                                 queries.end());

  SegmentResultCache cache(1 << 20);
  const CoalescedFilter cold = CoalescedFilterSegments<char>(
      *matcher, std::span<const std::span<const char>>(views), 1.0, &cache);
  EXPECT_EQ(cold.segments_cache_hits, 0);
  EXPECT_EQ(cold.segments_cache_misses, cold.segments_unique);
  EXPECT_EQ(cold.cache_shared_computations, 0);

  const int64_t before_warm = dist.computes();
  const CoalescedFilter warm = CoalescedFilterSegments<char>(
      *matcher, std::span<const std::span<const char>>(views), 1.0, &cache);
  // A fully warm round executes zero distance work: no index traversal,
  // no per-hit distance fill — everything comes from the cache.
  EXPECT_EQ(dist.computes(), before_warm);
  EXPECT_EQ(warm.total_filter_computations, 0);
  EXPECT_EQ(warm.segments_cache_hits, warm.segments_unique);
  EXPECT_EQ(warm.segments_cache_misses, 0);
  // Billing is untouched by warmth; the cache's savings are surfaced
  // separately and cover every billed computation this round.
  EXPECT_EQ(warm.billed_filter_computations, cold.billed_filter_computations);
  EXPECT_GT(warm.cache_shared_computations, 0);

  // Bit-identical outcome: hits (windows, segments, distances) and every
  // member's stats equal the cold round's.
  ASSERT_EQ(warm.hits.size(), cold.hits.size());
  for (size_t m = 0; m < cold.hits.size(); ++m) {
    const std::string where = "member " + std::to_string(m);
    ASSERT_EQ(warm.hits[m].size(), cold.hits[m].size()) << where;
    for (size_t h = 0; h < cold.hits[m].size(); ++h) {
      EXPECT_EQ(warm.hits[m][h].window, cold.hits[m][h].window) << where;
      EXPECT_EQ(warm.hits[m][h].query_segment, cold.hits[m][h].query_segment)
          << where;
      EXPECT_EQ(warm.hits[m][h].distance, cold.hits[m][h].distance) << where;
    }
    ExpectStatsEqual(warm.stats[m], cold.stats[m], where);
  }
}

TEST(MatchServerValidationTest, MalformedRequestsFailFastAtSubmit) {
  ProteinGenerator gen(ProteinGenOptions{.mean_length = 80, .seed = 913});
  const auto db = gen.GenerateDatabaseWithWindows(30, 6);
  const LevenshteinDistance<char> dist;
  MatchServerOptions options;
  options.matcher.lambda = 20;
  options.index_kinds = {IndexKind::kLinearScan};
  auto server =
      std::move(MatchServer<char>::Start(db, dist, options)).ValueOrDie();

  const std::vector<char> query = ShortQuery(db);
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();

  const auto expect_invalid = [&](MatchRequest<char> request,
                                  const std::string& what) {
    Future<MatchResult> future = server->Submit(std::move(request));
    // Fail-fast contract: the future is complete before Submit returns.
    ASSERT_TRUE(future.Ready()) << what;
    EXPECT_EQ(future.Get().status.code(), StatusCode::kInvalidArgument)
        << what;
  };

  MatchRequest<char> base;
  base.type = MatchQueryType::kRangeSearch;
  base.query = query;
  base.epsilon = 1.0;

  {
    MatchRequest<char> r = base;
    r.query.clear();
    expect_invalid(std::move(r), "empty query");
  }
  // Regression for the coalescer's exact double == epsilon grouping (and
  // the cache key): a NaN epsilon must never be admitted.
  for (const double bad_epsilon : {nan, inf, -1.0}) {
    MatchRequest<char> r = base;
    r.epsilon = bad_epsilon;
    expect_invalid(std::move(r), "epsilon " + std::to_string(bad_epsilon));
    r = base;
    r.type = MatchQueryType::kLongestMatch;
    r.epsilon = bad_epsilon;
    expect_invalid(std::move(r),
                   "Type II epsilon " + std::to_string(bad_epsilon));
  }
  for (const double bad_max : {nan, inf, -0.5}) {
    MatchRequest<char> r = base;
    r.type = MatchQueryType::kNearestMatch;
    r.epsilon_max = bad_max;
    r.epsilon_increment = 0.5;
    expect_invalid(std::move(r), "epsilon_max " + std::to_string(bad_max));
  }
  for (const double bad_increment : {nan, inf, 0.0, -0.5}) {
    MatchRequest<char> r = base;
    r.type = MatchQueryType::kNearestMatch;
    r.epsilon_max = 2.0;
    r.epsilon_increment = bad_increment;
    expect_invalid(std::move(r),
                   "epsilon_increment " + std::to_string(bad_increment));
  }

  // The same request with well-formed fields still goes through.
  MatchRequest<char> good = base;
  EXPECT_TRUE(server->Submit(std::move(good)).Get().status.ok());
}

TEST(MatchServerCacheTest, WarmRoundsAreBitIdenticalAndSkipIndexWork) {
  ProteinGenerator gen(ProteinGenOptions{.mean_length = 80, .seed = 914});
  const auto db = gen.GenerateDatabaseWithWindows(50, 8);
  const LevenshteinDistance<char> dist;
  MatcherOptions matcher_options;
  matcher_options.lambda = 20;
  matcher_options.lambda0 = 2;
  matcher_options.index_kind = IndexKind::kCoverTree;
  auto matcher = std::move(SubsequenceMatcher<char>::Build(
                               db, dist, matcher_options))
                     .ValueOrDie();

  // Coalescable-only workload (Type III runs its own schedule outside
  // the cache) answered serially for ground truth.
  std::vector<MatchRequest<char>> workload;
  for (const MatchRequest<char>& r : MakeWorkload(db, 1.0, 12)) {
    if (r.type != MatchQueryType::kNearestMatch) workload.push_back(r);
  }
  std::vector<MatchResult> serial;
  for (const MatchRequest<char>& request : workload) {
    serial.push_back(RunSerial(*matcher, request));
  }

  MatchServerOptions server_options;
  server_options.matcher = matcher_options;
  auto server =
      std::move(MatchServer<char>::Start(db, dist, server_options))
          .ValueOrDie();

  const auto run_round = [&](const std::string& round) {
    std::vector<Future<MatchResult>> futures(workload.size());
    std::vector<std::thread> clients;
    for (size_t i = 0; i < workload.size(); ++i) {
      clients.emplace_back([&, i] {
        MatchRequest<char> request = workload[i];
        futures[i] = server->Submit(std::move(request));
      });
    }
    for (std::thread& t : clients) t.join();
    for (size_t i = 0; i < workload.size(); ++i) {
      MatchResult served = futures[i].Get();
      const std::string where = round + " request " + std::to_string(i);
      EXPECT_EQ(served.status, serial[i].status) << where;
      EXPECT_EQ(served.matches, serial[i].matches) << where;
      ASSERT_EQ(served.best.has_value(), serial[i].best.has_value()) << where;
      if (served.best.has_value()) {
        EXPECT_EQ(*served.best, *serial[i].best) << where;
      }
      ExpectStatsEqual(served.stats, serial[i].stats, where);
    }
  };

  run_round("cold");
  const ServeStats after_cold = server->stats();
  EXPECT_GT(after_cold.cache_misses, 0);

  run_round("warm");
  const ServeStats after_warm = server->stats();
  server->Shutdown();

  // Every unique segment of the warm round was already resident, so the
  // warm round hit for all of them and executed no new filter work while
  // billing stayed exact (covered by ExpectStatsEqual above).
  EXPECT_GT(after_warm.cache_hits, after_cold.cache_hits);
  EXPECT_EQ(after_warm.cache_misses, after_cold.cache_misses);
  EXPECT_EQ(after_warm.filter_computations, after_cold.filter_computations);
  EXPECT_GT(after_warm.cache_shared_computations,
            after_cold.cache_shared_computations);
  EXPECT_GE(after_warm.billed_filter_computations,
            after_warm.filter_computations +
                after_warm.cache_shared_computations);
}

TEST(MatchServerCacheTest, CacheOffMatchesCacheOnElementWise) {
  ProteinGenerator gen(ProteinGenOptions{.mean_length = 80, .seed = 915});
  const auto db = gen.GenerateDatabaseWithWindows(40, 8);
  const LevenshteinDistance<char> dist;
  MatchServerOptions on_options;
  on_options.matcher.lambda = 20;
  on_options.index_kinds = {IndexKind::kLinearScan};
  MatchServerOptions off_options = on_options;
  off_options.cache_capacity_bytes = 0;  // PR 4 behavior
  // A tiny cache exercises the eviction path in the same run.
  MatchServerOptions tiny_options = on_options;
  tiny_options.cache_capacity_bytes = 512;

  const std::vector<MatchRequest<char>> workload = MakeWorkload(db, 1.0, 10);
  const auto serve_all = [&](MatchServerOptions options) {
    auto server = std::move(MatchServer<char>::Start(db, dist, options))
                      .ValueOrDie();
    std::vector<MatchResult> results;
    for (int round = 0; round < 2; ++round) {
      for (const MatchRequest<char>& r : workload) {
        MatchRequest<char> request = r;
        results.push_back(server->Submit(std::move(request)).Get());
      }
    }
    const ServeStats stats = server->stats();
    server->Shutdown();
    return std::make_pair(std::move(results), stats);
  };

  const auto [on_results, on_stats] = serve_all(on_options);
  const auto [off_results, off_stats] = serve_all(off_options);
  const auto [tiny_results, tiny_stats] = serve_all(tiny_options);
  EXPECT_EQ(off_stats.cache_hits + off_stats.cache_misses, 0);
  EXPECT_GT(on_stats.cache_hits, 0);
  EXPECT_GT(tiny_stats.cache_evictions, 0);

  ASSERT_EQ(on_results.size(), off_results.size());
  ASSERT_EQ(on_results.size(), tiny_results.size());
  for (size_t i = 0; i < on_results.size(); ++i) {
    const std::string where = "request " + std::to_string(i);
    EXPECT_EQ(on_results[i].status, off_results[i].status) << where;
    EXPECT_EQ(on_results[i].matches, off_results[i].matches) << where;
    EXPECT_EQ(on_results[i].best, off_results[i].best) << where;
    ExpectStatsEqual(on_results[i].stats, off_results[i].stats, where);
    EXPECT_EQ(tiny_results[i].matches, off_results[i].matches) << where;
    EXPECT_EQ(tiny_results[i].best, off_results[i].best) << where;
    ExpectStatsEqual(tiny_results[i].stats, off_results[i].stats, where);
  }
}

TEST(MatchServerTest, ShutdownConcurrentWithSubmitCompletesEveryFuture) {
  // The Submit/Shutdown race: submissions that lose it must still get a
  // completed future (the error path in Submit), ones that win must be
  // drained to a real answer — no future may ever be left dangling.
  ProteinGenerator gen(ProteinGenOptions{.mean_length = 80, .seed = 916});
  const auto db = gen.GenerateDatabaseWithWindows(30, 6);
  const LevenshteinDistance<char> dist;
  MatchServerOptions options;
  options.matcher.lambda = 20;
  options.index_kinds = {IndexKind::kLinearScan};
  auto server =
      std::move(MatchServer<char>::Start(db, dist, options)).ValueOrDie();

  const std::vector<char> query = ShortQuery(db);
  constexpr int kClients = 4;
  constexpr int kPerClient = 12;
  std::vector<std::vector<Future<MatchResult>>> futures(kClients);
  std::atomic<bool> go{false};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      for (int i = 0; i < kPerClient; ++i) {
        MatchRequest<char> request;
        request.type = MatchQueryType::kLongestMatch;
        request.query = query;
        request.epsilon = 1.0;
        futures[c].push_back(server->Submit(std::move(request)));
      }
    });
  }
  go.store(true, std::memory_order_release);
  server->Shutdown();  // races the submissions above
  for (std::thread& t : clients) t.join();

  int completed_ok = 0;
  int rejected = 0;
  for (const auto& per_client : futures) {
    for (const Future<MatchResult>& future : per_client) {
      Future<MatchResult> f = future;  // Get() consumes; copies share state
      const MatchResult result = f.Get();  // must never hang
      if (result.status.ok()) {
        ++completed_ok;
      } else {
        EXPECT_EQ(result.status.code(), StatusCode::kUnavailable);
        ++rejected;
      }
    }
  }
  EXPECT_EQ(completed_ok + rejected, kClients * kPerClient);
}

TEST(MatchServerTest, UnknownIndexKindFailsTheRequestOnly) {
  ProteinGenerator gen(ProteinGenOptions{.mean_length = 80, .seed = 904});
  const auto db = gen.GenerateDatabaseWithWindows(30, 6);
  const LevenshteinDistance<char> dist;
  MatchServerOptions options;
  options.matcher.lambda = 20;
  options.index_kinds = {IndexKind::kLinearScan};
  auto server =
      std::move(MatchServer<char>::Start(db, dist, options)).ValueOrDie();

  MatchRequest<char> bad;
  bad.query = ShortQuery(db);
  bad.epsilon = 1.0;
  bad.index_kind = IndexKind::kVpTree;  // not configured
  MatchRequest<char> good = bad;
  good.index_kind = std::nullopt;

  Future<MatchResult> bad_future = server->Submit(std::move(bad));
  Future<MatchResult> good_future = server->Submit(std::move(good));
  EXPECT_EQ(bad_future.Get().status.code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(good_future.Get().status.ok());
}

TEST(MatchServerTest, SubmitAfterShutdownFailsFast) {
  ProteinGenerator gen(ProteinGenOptions{.mean_length = 80, .seed = 905});
  const auto db = gen.GenerateDatabaseWithWindows(30, 6);
  const LevenshteinDistance<char> dist;
  MatchServerOptions options;
  options.matcher.lambda = 20;
  options.index_kinds = {IndexKind::kLinearScan};
  auto server =
      std::move(MatchServer<char>::Start(db, dist, options)).ValueOrDie();
  server->Shutdown();

  MatchRequest<char> request;
  request.query = ShortQuery(db);
  request.epsilon = 1.0;
  Future<MatchResult> future = server->Submit(std::move(request));
  ASSERT_TRUE(future.Ready());
  EXPECT_EQ(future.Get().status.code(), StatusCode::kUnavailable);

  // Ingest after Shutdown gets the same precise status, synchronously.
  std::vector<char> elements = ShortQuery(db);
  EXPECT_EQ(server->AppendSequence(Sequence<char>(std::move(elements)))
                .status()
                .code(),
            StatusCode::kUnavailable);
  EXPECT_EQ(server->RetireSequence(0).status().code(),
            StatusCode::kUnavailable);
}

TEST(MatchServerTest, ErrorResultsCarryTheSameStatsAsTheLibrary) {
  // A Type I query that trips max_verifications: the library errors but
  // still reports the work done; the served result must match both.
  ProteinGenerator gen(ProteinGenOptions{.mean_length = 80, .seed = 908});
  const auto db = gen.GenerateDatabaseWithWindows(30, 6);
  const LevenshteinDistance<char> dist;
  MatcherOptions matcher_options;
  matcher_options.lambda = 20;
  matcher_options.index_kind = IndexKind::kLinearScan;
  matcher_options.max_verifications = 1;
  auto matcher = std::move(SubsequenceMatcher<char>::Build(
                               db, dist, matcher_options))
                     .ValueOrDie();

  MatchRequest<char> request;
  request.type = MatchQueryType::kRangeSearch;
  request.query = ShortQuery(db);
  request.epsilon = 2.0;
  const MatchResult expected = RunSerial(*matcher, request);
  ASSERT_EQ(expected.status.code(), StatusCode::kOutOfRange);

  MatchServerOptions server_options;
  server_options.matcher = matcher_options;
  auto server = std::move(MatchServer<char>::Start(db, dist, server_options))
                    .ValueOrDie();
  const MatchResult served = server->Submit(std::move(request)).Get();
  EXPECT_EQ(served.status, expected.status);
  ExpectStatsEqual(served.stats, expected.stats, "capped RangeSearch");
}

TEST(MatchServerTest, InvalidBuildOptionsFailStart) {
  ProteinGenerator gen(ProteinGenOptions{.mean_length = 80, .seed = 906});
  const auto db = gen.GenerateDatabaseWithWindows(30, 6);
  const LevenshteinDistance<char> dist;
  MatchServerOptions options;
  options.matcher.lambda = 21;  // odd: rejected by SubsequenceMatcher
  const auto result = MatchServer<char>::Start(db, dist, options);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(RequestQueueTest, DrainsEverythingPendingInOneWait) {
  RequestQueue<int> queue;
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(queue.Push(i));
  std::vector<int> out;
  EXPECT_TRUE(queue.DrainWait(&out));
  EXPECT_EQ(out, (std::vector<int>{0, 1, 2, 3, 4}));
  EXPECT_EQ(queue.size(), 0u);
}

TEST(RequestQueueTest, MaxItemsCapsOneDrain) {
  RequestQueue<int> queue;
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(queue.Push(i));
  std::vector<int> out;
  EXPECT_TRUE(queue.DrainWait(&out, 2));
  EXPECT_EQ(out, (std::vector<int>{0, 1}));
  EXPECT_TRUE(queue.DrainWait(&out, 2));
  EXPECT_EQ(out, (std::vector<int>{2, 3}));
  EXPECT_TRUE(queue.DrainWait(&out, 2));
  EXPECT_EQ(out, (std::vector<int>{4}));
}

TEST(RequestQueueTest, CloseDrainsThenSignalsExhaustion) {
  RequestQueue<int> queue;
  EXPECT_TRUE(queue.Push(7));
  queue.Close();
  EXPECT_FALSE(queue.Push(8));  // rejected after close
  std::vector<int> out;
  EXPECT_TRUE(queue.DrainWait(&out));  // pending item still delivered
  EXPECT_EQ(out, (std::vector<int>{7}));
  EXPECT_FALSE(queue.DrainWait(&out));  // closed and drained
}

TEST(FutureTest, DeliversAcrossThreads) {
  Promise<int> promise;
  Future<int> future = promise.GetFuture();
  EXPECT_FALSE(future.Ready());
  std::thread producer([&] { promise.Set(42); });
  EXPECT_EQ(future.Get(), 42);
  producer.join();
}

}  // namespace
}  // namespace subseq
