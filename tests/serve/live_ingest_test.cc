// Live ingest through the MatchServer: epoch publishes under serving.
//
// The serving-layer half of the epoch determinism contract. AppendSequence /
// RetireSequence publish new epochs RCU-style while clients submit
// concurrently; a background merge compacts the delta off-thread. The
// tests pin down the four load-bearing properties: (1) a server that
// ingested live answers element-wise identically to a server freshly
// started over the final epoch's database; (2) the segment cache can
// never serve a hit produced at a dead epoch (the regression that keyed
// this PR: pre-epoch keys WOULD serve stale results bit-for-bit); (3) a
// query admitted mid-swap runs against exactly one epoch — its answer
// is one of the per-epoch ground truths, never a blend; (4) a snapshot
// saved mid-ingest (live delta + tombstones) round-trips byte-stably
// and reloads into an identically-answering server. The concurrent
// tests double as the TSan suite for Append/Submit/merge races (see the
// tsan preset filter).

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <fstream>
#include <iterator>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "subseq/data/protein_gen.h"
#include "subseq/distance/levenshtein.h"
#include "subseq/serve/match_server.h"

namespace subseq {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

std::vector<char> ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::vector<char>(std::istreambuf_iterator<char>(in),
                           std::istreambuf_iterator<char>());
}

std::vector<char> CutQuery(const SequenceDatabase<char>& db, SeqId seq,
                           int32_t offset) {
  const Sequence<char>& s = db.at(seq);
  EXPECT_GE(s.size(), offset + 26);
  const auto view = s.Subsequence(Interval{offset, offset + 26});
  return std::vector<char>(view.begin(), view.end());
}

void ExpectStatsEqual(const MatchQueryStats& a, const MatchQueryStats& b,
                      bool full, const std::string& where) {
  EXPECT_EQ(a.segments, b.segments) << where;
  EXPECT_EQ(a.hits, b.hits) << where;
  EXPECT_EQ(a.chains, b.chains) << where;
  EXPECT_EQ(a.verifications, b.verifications) << where;
  // filter_computations may move between the delta scan and the merged
  // base for the tree backends; LinearScan's bill is split-invariant.
  if (full) EXPECT_EQ(a.filter_computations, b.filter_computations) << where;
}

/// A mixed workload against one kind (queries cut from live sequences).
std::vector<MatchRequest<char>> KindWorkload(const SequenceDatabase<char>& db,
                                             IndexKind kind, double epsilon) {
  std::vector<MatchRequest<char>> requests;
  for (int i = 0; i < 6; ++i) {
    SeqId s = i % db.size();
    while (db.is_retired(s) || db.at(s).size() < 30) s = (s + 1) % db.size();
    MatchRequest<char> request;
    request.query = CutQuery(db, s, (i * 3) % (db.at(s).size() - 26));
    request.index_kind = kind;
    switch (i % 3) {
      case 0:
        request.type = MatchQueryType::kRangeSearch;
        request.epsilon = epsilon;
        break;
      case 1:
        request.type = MatchQueryType::kLongestMatch;
        request.epsilon = epsilon;
        break;
      default:
        request.type = MatchQueryType::kNearestMatch;
        request.epsilon_max = 2.0 * epsilon + 1.0;
        request.epsilon_increment = 0.5;
        break;
    }
    requests.push_back(std::move(request));
  }
  return requests;
}

void ExpectResultsIdentical(MatchServer<char>* live,
                            MatchServer<char>* fresh,
                            const std::vector<MatchRequest<char>>& workload,
                            bool full_stats, const std::string& where) {
  for (size_t i = 0; i < workload.size(); ++i) {
    const std::string at = where + " request " + std::to_string(i);
    MatchRequest<char> a = workload[i];
    MatchRequest<char> b = workload[i];
    const MatchResult live_result = live->Submit(std::move(a)).Get();
    const MatchResult fresh_result = fresh->Submit(std::move(b)).Get();
    EXPECT_EQ(live_result.status, fresh_result.status) << at;
    EXPECT_EQ(live_result.matches, fresh_result.matches) << at;
    EXPECT_EQ(live_result.best, fresh_result.best) << at;
    ExpectStatsEqual(live_result.stats, fresh_result.stats, full_stats, at);
  }
}

MatchServerOptions BaseOptions() {
  MatchServerOptions options;
  options.matcher.lambda = 20;
  options.matcher.lambda0 = 5;
  options.index_kinds = {IndexKind::kLinearScan, IndexKind::kCoverTree};
  return options;
}

TEST(LiveIngestTest, IngestedServerMatchesFreshServerElementWise) {
  ProteinGenerator gen(ProteinGenOptions{.mean_length = 60, .seed = 81});
  const SequenceDatabase<char> db = gen.GenerateDatabaseWithWindows(24, 10);
  const LevenshteinDistance<char> dist;
  MatchServerOptions options = BaseOptions();
  // Pure delta serving: no merge interferes with the epoch ids, so the
  // fresh server (same ops applied to the database directly) lands on
  // the identical epoch and the comparison covers the delta path.
  options.matcher.delta_merge_threshold = 1 << 20;

  auto live = std::move(MatchServer<char>::Start(db, dist, options))
                  .ValueOrDie();
  ProteinGenerator op_gen(ProteinGenOptions{.mean_length = 60, .seed = 82});
  const Sequence<char> a = op_gen.GenerateWithLength(60);
  const Sequence<char> b = op_gen.GenerateWithLength(44);
  const Sequence<char> c = op_gen.GenerateWithLength(52);

  auto e1 = live->AppendSequence(a);
  ASSERT_TRUE(e1.ok());
  EXPECT_EQ(e1.value(), 1u);
  auto e2 = live->AppendSequence(b);
  ASSERT_TRUE(e2.ok());
  auto e3 = live->RetireSequence(1);
  ASSERT_TRUE(e3.ok());
  auto e4 = live->AppendSequence(c);
  ASSERT_TRUE(e4.ok());
  EXPECT_EQ(e4.value(), 4u);

  const SequenceDatabase<char> final_db =
      db.Append(a).Append(b).Retire(1).Append(c);
  auto fresh = std::move(MatchServer<char>::Start(final_db, dist, options))
                   .ValueOrDie();

  for (const IndexKind kind : options.index_kinds) {
    ExpectResultsIdentical(live.get(), fresh.get(),
                           KindWorkload(final_db, kind, 2.0),
                           /*full_stats=*/kind == IndexKind::kLinearScan,
                           "kind " + std::to_string(static_cast<int>(kind)));
  }

  const ServeStats stats = live->stats();
  EXPECT_EQ(stats.epoch, 4u);
  EXPECT_EQ(stats.appends, 3);
  EXPECT_EQ(stats.retires, 1);
  EXPECT_EQ(stats.merges, 0);
  EXPECT_GT(stats.delta_windows, 0);
}

TEST(LiveIngestTest, BackgroundMergePublishesAndKeepsAnswersExact) {
  ProteinGenerator gen(ProteinGenOptions{.mean_length = 60, .seed = 83});
  const SequenceDatabase<char> db = gen.GenerateDatabaseWithWindows(20, 10);
  const LevenshteinDistance<char> dist;
  MatchServerOptions options = BaseOptions();
  options.matcher.delta_merge_threshold = 1;  // merge after every ingest

  auto live = std::move(MatchServer<char>::Start(db, dist, options))
                  .ValueOrDie();
  ProteinGenerator op_gen(ProteinGenOptions{.mean_length = 60, .seed = 84});
  SequenceDatabase<char> final_db = db;
  for (int i = 0; i < 4; ++i) {
    const Sequence<char> seq = op_gen.GenerateWithLength(40 + 4 * i);
    final_db = final_db.Append(seq);
    ASSERT_TRUE(live->AppendSequence(seq).ok());
  }

  // The merge is asynchronous; wait (bounded) for the delta to drain.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (live->stats().delta_windows > 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  const ServeStats stats = live->stats();
  EXPECT_EQ(stats.delta_windows, 0) << "merge never drained the delta";
  EXPECT_GE(stats.merges, 1);
  EXPECT_GE(stats.epoch, 5u);  // 4 ingests + at least one merge publish

  // Post-merge serving is element-wise identical to a fresh server over
  // the same contents (the merged index IS the cold build's bytes).
  auto fresh = std::move(MatchServer<char>::Start(final_db, dist, options))
                   .ValueOrDie();
  for (const IndexKind kind : options.index_kinds) {
    // Both sides serve an empty delta (fresh trivially; live post-merge),
    // so even filter billing must agree for every kind.
    ExpectResultsIdentical(live.get(), fresh.get(),
                           KindWorkload(final_db, kind, 2.0),
                           /*full_stats=*/true,
                           "kind " + std::to_string(static_cast<int>(kind)));
  }
}

TEST(LiveIngestTest, CacheNeverServesHitsFromADeadEpoch) {
  // THE cache regression this PR's epoch-keying fixes: warm the cache,
  // change the answer by ingesting, re-submit the bit-identical query.
  // A pre-epoch cache key would serve the stale hit list (and its stale
  // billing) bit-for-bit; the epoch-keyed cache must miss and re-filter.
  ProteinGenerator gen(ProteinGenOptions{.mean_length = 60, .seed = 85});
  const SequenceDatabase<char> db = gen.GenerateDatabaseWithWindows(16, 10);
  const LevenshteinDistance<char> dist;
  MatchServerOptions options = BaseOptions();
  options.index_kinds = {IndexKind::kLinearScan};
  options.matcher.delta_merge_threshold = 1 << 20;

  auto server = std::move(MatchServer<char>::Start(db, dist, options))
                    .ValueOrDie();
  const auto submit = [&] {
    MatchRequest<char> request;
    request.type = MatchQueryType::kRangeSearch;
    request.query = CutQuery(db, 0, 0);
    request.epsilon = 0.0;
    return server->Submit(std::move(request)).Get();
  };

  const MatchResult before = submit();
  ASSERT_TRUE(before.status.ok());
  ASSERT_FALSE(before.matches.empty()) << "exact self-region must match";
  const MatchResult warm = submit();  // second round answers warm
  EXPECT_EQ(warm.matches, before.matches);
  EXPECT_GT(server->stats().cache_hits, 0) << "cache should be warm now";

  // Append a verbatim copy of sequence 0: the same query now ALSO
  // matches inside the new sequence.
  const SeqId copy_id = db.size();
  {
    const auto view = db.at(0).Subsequence(Interval{0, db.at(0).size()});
    ASSERT_TRUE(server
                    ->AppendSequence(Sequence<char>(
                        std::vector<char>(view.begin(), view.end())))
                    .ok());
  }
  const MatchResult appended = submit();
  ASSERT_TRUE(appended.status.ok());
  bool hits_copy = false;
  for (const SubsequenceMatch& m : appended.matches) {
    hits_copy |= m.seq == copy_id;
  }
  EXPECT_TRUE(hits_copy)
      << "stale cache hit: the appended copy is invisible";
  EXPECT_GT(appended.matches.size(), before.matches.size());

  // Retire the original: its matches must vanish just as promptly.
  ASSERT_TRUE(server->RetireSequence(0).ok());
  const MatchResult retired = submit();
  ASSERT_TRUE(retired.status.ok());
  ASSERT_FALSE(retired.matches.empty());
  for (const SubsequenceMatch& m : retired.matches) {
    EXPECT_NE(m.seq, 0) << "stale cache hit: retired windows served";
  }
}

TEST(LiveIngestTest, ConcurrentSubmitsSeeExactlyOneEpochEach) {
  // Clients hammer one bit-identical query while ingest publishes five
  // epochs and background merges race the publishes. Every concurrently
  // admitted query must come back equal to ONE of the per-epoch ground
  // truths — a blended answer (e.g. appended windows visible but a
  // concurrent retire's mask also applied) proves a torn epoch. Doubles
  // as the TSan exercise for Append/Submit/merge.
  ProteinGenerator gen(ProteinGenOptions{.mean_length = 60, .seed = 86});
  const SequenceDatabase<char> db = gen.GenerateDatabaseWithWindows(16, 10);
  const LevenshteinDistance<char> dist;
  MatchServerOptions options = BaseOptions();
  options.index_kinds = {IndexKind::kLinearScan};
  options.matcher.delta_merge_threshold = 2;  // merges race the stress

  ProteinGenerator op_gen(ProteinGenOptions{.mean_length = 60, .seed = 87});
  const Sequence<char> a = op_gen.GenerateWithLength(60);
  const Sequence<char> b = op_gen.GenerateWithLength(44);
  const SeqId first_appended = db.size();

  // Ground truth per content state e0..e4 (merge publishes repeat a
  // content state under a new epoch id, so they add no new answers).
  const std::vector<char> query = CutQuery(db, 0, 4);
  std::vector<SequenceDatabase<char>> epochs;
  epochs.push_back(db);
  epochs.push_back(epochs.back().Append(a));
  epochs.push_back(epochs.back().Append(b));
  epochs.push_back(epochs.back().Retire(0));
  epochs.push_back(epochs.back().Retire(first_appended));
  std::vector<std::vector<SubsequenceMatch>> expected;
  for (const auto& edb : epochs) {
    MatcherOptions mo = options.matcher;
    mo.index_kind = IndexKind::kLinearScan;
    auto m = std::move(SubsequenceMatcher<char>::Build(edb, dist, mo))
                 .ValueOrDie();
    expected.push_back(
        std::move(m->RangeSearch(query, 0.0)).ValueOrDie());
  }

  auto server = std::move(MatchServer<char>::Start(db, dist, options))
                    .ValueOrDie();
  constexpr int kClients = 4;
  constexpr int kPerClient = 24;
  std::vector<std::vector<Future<MatchResult>>> futures(kClients);
  std::atomic<bool> go{false};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      for (int i = 0; i < kPerClient; ++i) {
        MatchRequest<char> request;
        request.type = MatchQueryType::kRangeSearch;
        request.query = query;
        request.epsilon = 0.0;
        futures[c].push_back(server->Submit(std::move(request)));
      }
    });
  }
  go.store(true, std::memory_order_release);
  ASSERT_TRUE(server->AppendSequence(a).ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  ASSERT_TRUE(server->AppendSequence(b).ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  ASSERT_TRUE(server->RetireSequence(0).ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  ASSERT_TRUE(server->RetireSequence(first_appended).ok());
  for (std::thread& t : clients) t.join();

  // A request admitted after the last publish sees exactly e4.
  MatchRequest<char> last;
  last.type = MatchQueryType::kRangeSearch;
  last.query = query;
  last.epsilon = 0.0;
  const MatchResult final_result = server->Submit(std::move(last)).Get();
  ASSERT_TRUE(final_result.status.ok());
  EXPECT_EQ(final_result.matches, expected.back());

  server->Shutdown();
  for (const auto& per_client : futures) {
    for (const Future<MatchResult>& future : per_client) {
      Future<MatchResult> f = future;
      const MatchResult result = f.Get();
      ASSERT_TRUE(result.status.ok()) << result.status.ToString();
      bool matches_some_epoch = false;
      for (const auto& e : expected) {
        matches_some_epoch |= result.matches == e;
      }
      EXPECT_TRUE(matches_some_epoch)
          << "a result matched NO single epoch's ground truth — the "
             "query must have observed a torn (mid-swap) state";
    }
  }
}

TEST(LiveIngestTest, MidIngestSnapshotRoundTripsByteStably) {
  // A snapshot taken while the server carries a live delta AND
  // tombstones must (a) reload into a server that answers element-wise
  // identically — same base/delta split, so even filter billing agrees —
  // and (b) re-save to the identical bytes.
  ProteinGenerator gen(ProteinGenOptions{.mean_length = 60, .seed = 88});
  const SequenceDatabase<char> db = gen.GenerateDatabaseWithWindows(20, 10);
  const LevenshteinDistance<char> dist;
  MatchServerOptions options = BaseOptions();
  options.matcher.delta_merge_threshold = 1 << 20;  // keep the delta live

  auto live = std::move(MatchServer<char>::Start(db, dist, options))
                  .ValueOrDie();
  ProteinGenerator op_gen(ProteinGenOptions{.mean_length = 60, .seed = 89});
  ASSERT_TRUE(live->AppendSequence(op_gen.GenerateWithLength(56)).ok());
  ASSERT_TRUE(live->RetireSequence(2).ok());
  ASSERT_TRUE(live->AppendSequence(op_gen.GenerateWithLength(40)).ok());
  ASSERT_GT(live->stats().delta_windows, 0);

  const std::string saved = TempPath("live_ingest_snapshot");
  ASSERT_TRUE(live->SaveSnapshot(saved).ok());

  // Reload over the LIVE epoch's database (a fresh copy of it).
  const SequenceDatabase<char> live_db =
      live->matcher(IndexKind::kLinearScan)->database();
  MatchServerOptions load_options = options;
  load_options.snapshot_path = saved;
  auto reloaded = MatchServer<char>::Start(live_db, dist, load_options);
  ASSERT_TRUE(reloaded.ok()) << reloaded.status().ToString();

  const std::string resaved = TempPath("live_ingest_snapshot_resaved");
  ASSERT_TRUE(reloaded.value()->SaveSnapshot(resaved).ok());
  EXPECT_EQ(ReadFileBytes(saved), ReadFileBytes(resaved))
      << "mid-ingest save -> load -> save must be byte-stable";

  for (const IndexKind kind : options.index_kinds) {
    ExpectResultsIdentical(live.get(), reloaded.value().get(),
                           KindWorkload(live_db, kind, 2.0),
                           /*full_stats=*/true,
                           "kind " + std::to_string(static_cast<int>(kind)));
  }
  EXPECT_EQ(reloaded.value()->stats().epoch, live->stats().epoch);
  EXPECT_EQ(reloaded.value()->stats().delta_windows,
            live->stats().delta_windows);

  // Loading the mid-ingest snapshot over the WRONG epoch's database is
  // refused — the epoch id is validated, not trusted.
  auto wrong = MatchServer<char>::Start(db, dist, load_options);
  EXPECT_FALSE(wrong.ok());
}

}  // namespace
}  // namespace subseq
