// SegmentResultCache unit tests: LRU mechanics, byte accounting,
// epsilon/kind-aware keys, and the word-at-a-time segment-byte hash the
// coalescer's dedup and the cache key share.

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "subseq/serve/segment_cache.h"

namespace subseq {
namespace {

SegmentResultCache::Entry MakeEntry(std::vector<ObjectId> windows,
                                    int64_t cost) {
  SegmentResultCache::Entry entry;
  entry.distances.assign(windows.size(), 0.5);
  entry.windows = std::move(windows);
  entry.filter_computations = cost;
  return entry;
}

// Per-entry byte charge with an 8-byte key and no hits: key + fixed
// overhead (see EntryCharge in segment_cache.cc).
constexpr size_t kEmptyEntryCharge = 8 + 96;

TEST(SegmentCacheTest, HitReturnsStoredEntryAndCounts) {
  SegmentResultCache cache(1 << 20);
  const std::string key = "SEGMENTA";
  cache.Insert(0, IndexKind::kLinearScan, 1.0, key.data(), key.size(),
               MakeEntry({3, 7}, 42));

  const SegmentResultCache::Entry* entry =
      cache.Lookup(0, IndexKind::kLinearScan, 1.0, key.data(), key.size());
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->windows, (std::vector<ObjectId>{3, 7}));
  ASSERT_EQ(entry->distances.size(), 2u);
  EXPECT_EQ(entry->filter_computations, 42);

  const SegmentResultCache::Counters counters = cache.counters();
  EXPECT_EQ(counters.hits, 1);
  EXPECT_EQ(counters.misses, 0);
  EXPECT_EQ(counters.entries, 1);
  EXPECT_GT(counters.bytes_used, 0);
}

TEST(SegmentCacheTest, EpsilonAndKindAndBytesAllDistinguishKeys) {
  SegmentResultCache cache(1 << 20);
  const std::string key = "SEGMENTA";
  cache.Insert(0, IndexKind::kLinearScan, 1.0, key.data(), key.size(),
               MakeEntry({1}, 1));

  // Same bytes, different epsilon: the hit list depends on epsilon.
  EXPECT_EQ(cache.Lookup(0, IndexKind::kLinearScan, 2.0, key.data(), key.size()),
            nullptr);
  // Same bytes, same epsilon, different index kind: costs differ by kind.
  EXPECT_EQ(cache.Lookup(0, IndexKind::kCoverTree, 1.0, key.data(), key.size()),
            nullptr);
  // Different bytes.
  const std::string other = "SEGMENTB";
  EXPECT_EQ(
      cache.Lookup(0, IndexKind::kLinearScan, 1.0, other.data(), other.size()),
      nullptr);
  // The original triple still hits.
  EXPECT_NE(cache.Lookup(0, IndexKind::kLinearScan, 1.0, key.data(), key.size()),
            nullptr);
  EXPECT_EQ(cache.counters().misses, 3);
  EXPECT_EQ(cache.counters().hits, 1);
}

TEST(SegmentCacheTest, NegativeZeroEpsilonSharesTheZeroKeyspace) {
  // Keys compare epsilon by bit pattern, but -0.0 == +0.0 everywhere
  // else (PlanCoalesce's grouping, the indexes' <= epsilon test), so the
  // two must hit each other's entries.
  SegmentResultCache cache(1 << 20);
  const std::string key = "SEGMENTA";
  cache.Insert(0, IndexKind::kLinearScan, -0.0, key.data(), key.size(),
               MakeEntry({4}, 5));
  const SegmentResultCache::Entry* entry =
      cache.Lookup(0, IndexKind::kLinearScan, 0.0, key.data(), key.size());
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->windows, (std::vector<ObjectId>{4}));
  // And only one entry exists for the logical zero epsilon.
  cache.Insert(0, IndexKind::kLinearScan, 0.0, key.data(), key.size(),
               MakeEntry({4}, 5));
  EXPECT_EQ(cache.counters().entries, 1);
}

TEST(SegmentCacheTest, LruEvictsLeastRecentlyUsedFirst) {
  // Room for exactly two empty-hit entries with 8-byte keys.
  SegmentResultCache cache(2 * kEmptyEntryCharge);
  const std::string a = "AAAAAAAA";
  const std::string b = "BBBBBBBB";
  const std::string c = "CCCCCCCC";
  cache.Insert(0, IndexKind::kLinearScan, 1.0, a.data(), a.size(),
               MakeEntry({}, 1));
  cache.Insert(0, IndexKind::kLinearScan, 1.0, b.data(), b.size(),
               MakeEntry({}, 2));
  // Touch A so B becomes the LRU victim.
  ASSERT_NE(cache.Lookup(0, IndexKind::kLinearScan, 1.0, a.data(), a.size()),
            nullptr);
  cache.Insert(0, IndexKind::kLinearScan, 1.0, c.data(), c.size(),
               MakeEntry({}, 3));

  EXPECT_EQ(cache.Lookup(0, IndexKind::kLinearScan, 1.0, b.data(), b.size()),
            nullptr);  // evicted
  EXPECT_NE(cache.Lookup(0, IndexKind::kLinearScan, 1.0, a.data(), a.size()),
            nullptr);
  EXPECT_NE(cache.Lookup(0, IndexKind::kLinearScan, 1.0, c.data(), c.size()),
            nullptr);
  EXPECT_EQ(cache.counters().evictions, 1);
  EXPECT_EQ(cache.counters().entries, 2);
}

TEST(SegmentCacheTest, OversizedEntryIsNotStored) {
  SegmentResultCache cache(32);  // smaller than any entry's overhead
  const std::string key = "SEGMENTA";
  cache.Insert(0, IndexKind::kLinearScan, 1.0, key.data(), key.size(),
               MakeEntry({1, 2, 3}, 9));
  EXPECT_EQ(cache.Lookup(0, IndexKind::kLinearScan, 1.0, key.data(), key.size()),
            nullptr);
  EXPECT_EQ(cache.counters().entries, 0);
  EXPECT_EQ(cache.counters().bytes_used, 0);
  EXPECT_EQ(cache.counters().evictions, 0);
}

TEST(SegmentCacheTest, ReinsertingAKeyRefreshesTheEntryInPlace) {
  SegmentResultCache cache(1 << 20);
  const std::string key = "SEGMENTA";
  cache.Insert(0, IndexKind::kLinearScan, 1.0, key.data(), key.size(),
               MakeEntry({1}, 10));
  cache.Insert(0, IndexKind::kLinearScan, 1.0, key.data(), key.size(),
               MakeEntry({1, 2, 3}, 10));
  const SegmentResultCache::Entry* entry =
      cache.Lookup(0, IndexKind::kLinearScan, 1.0, key.data(), key.size());
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->windows, (std::vector<ObjectId>{1, 2, 3}));
  EXPECT_EQ(cache.counters().entries, 1);
}

TEST(SegmentCacheTest, EpochIsPartOfTheKey) {
  // Live ingest correctness: an entry produced at one epoch must be
  // invisible at every other — the hit set AND the billed stand-alone
  // cost both change across epochs (appended/retired windows, delta scan
  // vs merged base), so a cross-epoch hit would be silently wrong.
  SegmentResultCache cache(1 << 20);
  const std::string key = "SEGMENTA";
  cache.Insert(3, IndexKind::kLinearScan, 1.0, key.data(), key.size(),
               MakeEntry({1, 2}, 7));
  EXPECT_EQ(cache.Lookup(2, IndexKind::kLinearScan, 1.0, key.data(),
                         key.size()),
            nullptr);
  EXPECT_EQ(cache.Lookup(4, IndexKind::kLinearScan, 1.0, key.data(),
                         key.size()),
            nullptr);
  const SegmentResultCache::Entry* entry =
      cache.Lookup(3, IndexKind::kLinearScan, 1.0, key.data(), key.size());
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->filter_computations, 7);
  // Both epochs' entries coexist (distinct keys), each hit by its own.
  cache.Insert(4, IndexKind::kLinearScan, 1.0, key.data(), key.size(),
               MakeEntry({1, 2, 3}, 9));
  EXPECT_EQ(cache.counters().entries, 2);
  EXPECT_EQ(cache.Lookup(4, IndexKind::kLinearScan, 1.0, key.data(),
                         key.size())
                ->filter_computations,
            9);
}

TEST(SegmentCacheTest, SweepDeadEpochsEvictsOnlyDeadEntriesBounded) {
  SegmentResultCache cache(1 << 20);
  const std::string a = "AAAAAAAA";
  const std::string b = "BBBBBBBB";
  const std::string c = "CCCCCCCC";
  cache.Insert(1, IndexKind::kLinearScan, 1.0, a.data(), a.size(),
               MakeEntry({}, 1));
  cache.Insert(1, IndexKind::kLinearScan, 1.0, b.data(), b.size(),
               MakeEntry({}, 2));
  cache.Insert(2, IndexKind::kLinearScan, 1.0, c.data(), c.size(),
               MakeEntry({}, 3));

  // Bounded: max_scan = 1 looks only at the LRU tail (epoch 1's "A").
  EXPECT_EQ(cache.SweepDeadEpochs(/*live_epoch=*/2, /*max_scan=*/1), 1u);
  EXPECT_EQ(cache.counters().entries, 2);
  // A full sweep reclaims the remaining dead entry and keeps the live one.
  EXPECT_EQ(cache.SweepDeadEpochs(/*live_epoch=*/2, /*max_scan=*/100), 1u);
  EXPECT_EQ(cache.counters().entries, 1);
  EXPECT_NE(cache.Lookup(2, IndexKind::kLinearScan, 1.0, c.data(), c.size()),
            nullptr);
  EXPECT_EQ(cache.counters().evictions, 2);
  EXPECT_EQ(cache.counters().bytes_used,
            static_cast<int64_t>(kEmptyEntryCharge));
  // Idempotent once everything resident is live.
  EXPECT_EQ(cache.SweepDeadEpochs(/*live_epoch=*/2, /*max_scan=*/100), 0u);
}

TEST(SegmentCacheTest, HashDistinguishesLongBuffersDifferingAnywhere) {
  // The word-at-a-time hash must keep full sensitivity: a flip in any
  // byte — word-aligned or in the tail — changes the hash (with the
  // memcmp equality this is about bucket quality, not correctness).
  std::string base(1027, 'x');  // non-multiple of 8: exercises the tail
  const uint64_t h0 = HashSegmentBytes(base.data(), base.size());
  for (const size_t flip : {size_t{0}, size_t{512}, base.size() - 1}) {
    std::string mutated = base;
    mutated[flip] = 'y';
    EXPECT_NE(HashSegmentBytes(mutated.data(), mutated.size()), h0)
        << "flip at " << flip;
  }
  // Length is part of the hash: a strict prefix hashes differently.
  EXPECT_NE(HashSegmentBytes(base.data(), base.size() - 1), h0);
  // Deterministic across storage locations: only the bytes matter.
  const std::string copy = base;
  EXPECT_EQ(HashSegmentBytes(copy.data(), copy.size()), h0);
}

}  // namespace
}  // namespace subseq
