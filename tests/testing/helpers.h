// Shared test utilities: random element vectors, simple metric-space
// oracles, and a brute-force subsequence searcher used as ground truth.

#ifndef SUBSEQ_TESTS_TESTING_HELPERS_H_
#define SUBSEQ_TESTS_TESTING_HELPERS_H_

#include <algorithm>
#include <cmath>
#include <vector>

#include "subseq/core/rng.h"
#include "subseq/core/sequence.h"
#include "subseq/core/types.h"
#include "subseq/distance/distance.h"
#include "subseq/frame/matcher.h"
#include "subseq/metric/oracle.h"

namespace subseq::testing {

inline std::vector<char> RandomString(Rng* rng, int32_t length,
                                      std::string_view alphabet = "ACGT") {
  std::vector<char> out;
  out.reserve(static_cast<size_t>(length));
  for (int32_t i = 0; i < length; ++i) {
    out.push_back(alphabet[static_cast<size_t>(
        rng->NextBounded(alphabet.size()))]);
  }
  return out;
}

inline std::vector<double> RandomSeries(Rng* rng, int32_t length,
                                        double lo = 0.0, double hi = 10.0) {
  std::vector<double> out;
  out.reserve(static_cast<size_t>(length));
  for (int32_t i = 0; i < length; ++i) out.push_back(rng->NextDouble(lo, hi));
  return out;
}

inline std::vector<Point2d> RandomTrack(Rng* rng, int32_t length,
                                        double extent = 10.0) {
  std::vector<Point2d> out;
  out.reserve(static_cast<size_t>(length));
  for (int32_t i = 0; i < length; ++i) {
    out.push_back(Point2d{rng->NextDouble(0.0, extent),
                          rng->NextDouble(0.0, extent)});
  }
  return out;
}

/// 1-D points under |a - b|: the simplest metric space for index tests.
class ScalarPointOracle final : public DistanceOracle {
 public:
  explicit ScalarPointOracle(std::vector<double> points)
      : points_(std::move(points)) {}

  int32_t size() const override {
    return static_cast<int32_t>(points_.size());
  }
  double Distance(ObjectId a, ObjectId b) const override {
    return std::fabs(points_[static_cast<size_t>(a)] -
                     points_[static_cast<size_t>(b)]);
  }
  QueryDistanceFn QueryFrom(double q) const {
    return [this, q](ObjectId id) {
      return std::fabs(q - points_[static_cast<size_t>(id)]);
    };
  }
  const std::vector<double>& points() const { return points_; }

 private:
  std::vector<double> points_;
};

/// 2-D points under the Euclidean distance.
class PlanePointOracle final : public DistanceOracle {
 public:
  explicit PlanePointOracle(std::vector<Point2d> points)
      : points_(std::move(points)) {}

  int32_t size() const override {
    return static_cast<int32_t>(points_.size());
  }
  double Distance(ObjectId a, ObjectId b) const override {
    return PointDistance(points_[static_cast<size_t>(a)],
                         points_[static_cast<size_t>(b)]);
  }
  QueryDistanceFn QueryFrom(Point2d q) const {
    return [this, q](ObjectId id) {
      return PointDistance(q, points_[static_cast<size_t>(id)]);
    };
  }

 private:
  std::vector<Point2d> points_;
};

/// All subsequence pairs (SQ, SX) over the whole database satisfying the
/// Type I constraints — O(|Q|^2 |X|^2) distance calls; tiny inputs only.
template <typename T>
std::vector<SubsequenceMatch> BruteForceRangeSearch(
    const SequenceDatabase<T>& db, const SequenceDistance<T>& dist,
    std::span<const T> query, double epsilon, int32_t lambda,
    int32_t lambda0) {
  std::vector<SubsequenceMatch> out;
  const int32_t qn = static_cast<int32_t>(query.size());
  for (SeqId s = 0; s < db.size(); ++s) {
    const Sequence<T>& x = db.at(s);
    for (int32_t qb = 0; qb + lambda <= qn; ++qb) {
      for (int32_t qe = qb + lambda; qe <= qn; ++qe) {
        const auto sq = query.subspan(static_cast<size_t>(qb),
                                      static_cast<size_t>(qe - qb));
        for (int32_t xb = 0; xb + lambda <= x.size(); ++xb) {
          for (int32_t xe = xb + lambda; xe <= x.size(); ++xe) {
            if (std::abs((qe - qb) - (xe - xb)) > lambda0) continue;
            const auto sx = x.Subsequence(Interval{xb, xe});
            const double d = dist.Compute(sq, sx);
            if (d <= epsilon) {
              out.push_back(SubsequenceMatch{s, Interval{qb, qe},
                                             Interval{xb, xe}, d});
            }
          }
        }
      }
    }
  }
  return out;
}

/// Canonical ordering for match-set comparisons.
inline void SortMatches(std::vector<SubsequenceMatch>* matches) {
  std::sort(matches->begin(), matches->end(),
            [](const SubsequenceMatch& a, const SubsequenceMatch& b) {
              return std::tie(a.seq, a.query.begin, a.query.end, a.db.begin,
                              a.db.end) <
                     std::tie(b.seq, b.query.begin, b.query.end, b.db.begin,
                              b.db.end);
            });
}

}  // namespace subseq::testing

#endif  // SUBSEQ_TESTS_TESTING_HELPERS_H_
