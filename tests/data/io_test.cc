#include "subseq/data/io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "subseq/data/protein_gen.h"
#include "subseq/data/song_gen.h"
#include "subseq/data/trajectory_gen.h"

namespace subseq {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(IoTest, StringRoundTrip) {
  ProteinGenerator gen(ProteinGenOptions{.mean_length = 40, .seed = 1});
  const auto db = gen.GenerateDatabase(5);
  const std::string path = TempPath("strings.txt");
  ASSERT_TRUE(WriteStringDatabase(db, path).ok());
  auto loaded = ReadStringDatabase(path);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded.value().size(), db.size());
  for (SeqId i = 0; i < db.size(); ++i) {
    EXPECT_EQ(loaded.value().at(i), db.at(i));
  }
  std::remove(path.c_str());
}

TEST(IoTest, ScalarRoundTrip) {
  SongGenerator gen(SongGenOptions{.mean_length = 30, .seed = 2});
  const auto db = gen.GenerateDatabase(4);
  const std::string path = TempPath("series.txt");
  ASSERT_TRUE(WriteScalarDatabase(db, path).ok());
  auto loaded = ReadScalarDatabase(path);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded.value().size(), db.size());
  for (SeqId i = 0; i < db.size(); ++i) {
    EXPECT_EQ(loaded.value().at(i), db.at(i));
  }
  std::remove(path.c_str());
}

TEST(IoTest, TrajectoryRoundTrip) {
  TrajectoryGenerator gen(TrajectoryGenOptions{.mean_length = 25, .seed = 3});
  const auto db = gen.GenerateDatabase(3);
  const std::string path = TempPath("traj.txt");
  ASSERT_TRUE(WriteTrajectoryDatabase(db, path).ok());
  auto loaded = ReadTrajectoryDatabase(path);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded.value().size(), db.size());
  for (SeqId i = 0; i < db.size(); ++i) {
    EXPECT_EQ(loaded.value().at(i), db.at(i));
  }
  std::remove(path.c_str());
}

TEST(IoTest, MissingFileIsIoError) {
  EXPECT_EQ(ReadStringDatabase("/nonexistent/nowhere.txt").status().code(),
            StatusCode::kIoError);
  EXPECT_EQ(ReadScalarDatabase("/nonexistent/nowhere.txt").status().code(),
            StatusCode::kIoError);
  EXPECT_EQ(
      ReadTrajectoryDatabase("/nonexistent/nowhere.txt").status().code(),
      StatusCode::kIoError);
}

TEST(IoTest, UnwritablePathIsIoError) {
  SequenceDatabase<char> db;
  db.Add(MakeStringSequence("ACGT"));
  EXPECT_EQ(WriteStringDatabase(db, "/nonexistent/dir/out.txt").code(),
            StatusCode::kIoError);
}

TEST(IoTest, MalformedScalarFileRejected) {
  const std::string path = TempPath("bad_series.txt");
  {
    FILE* f = std::fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs("1.0 2.0 oops 3.0\n", f);
    std::fclose(f);
  }
  EXPECT_EQ(ReadScalarDatabase(path).status().code(), StatusCode::kIoError);
  std::remove(path.c_str());
}

TEST(IoTest, MalformedTrajectoryFileRejected) {
  const std::string path = TempPath("bad_traj.txt");
  {
    FILE* f = std::fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs("1.0,2.0 3.0\n", f);  // second token has no comma
    std::fclose(f);
  }
  EXPECT_EQ(ReadTrajectoryDatabase(path).status().code(),
            StatusCode::kIoError);
  std::remove(path.c_str());
}

TEST(IoTest, EmptyDatabaseRoundTrip) {
  SequenceDatabase<char> db;
  const std::string path = TempPath("empty.txt");
  ASSERT_TRUE(WriteStringDatabase(db, path).ok());
  auto loaded = ReadStringDatabase(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().size(), 0);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace subseq
