#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "subseq/data/motif.h"
#include "subseq/data/protein_gen.h"
#include "subseq/data/song_gen.h"
#include "subseq/data/trajectory_gen.h"

namespace subseq {
namespace {

TEST(ProteinGeneratorTest, DeterministicForSeed) {
  ProteinGenerator a(ProteinGenOptions{.mean_length = 50, .seed = 5});
  ProteinGenerator b(ProteinGenOptions{.mean_length = 50, .seed = 5});
  EXPECT_EQ(a.Generate(), b.Generate());
}

TEST(ProteinGeneratorTest, UsesOnlyAminoAcidAlphabet) {
  ProteinGenerator gen(ProteinGenOptions{.mean_length = 200, .seed = 6});
  const Sequence<char> seq = gen.Generate();
  for (int32_t i = 0; i < seq.size(); ++i) {
    EXPECT_NE(kAminoAcids.find(seq[i]), std::string_view::npos);
  }
}

TEST(ProteinGeneratorTest, LengthsWithinBand) {
  ProteinGenerator gen(ProteinGenOptions{.mean_length = 100, .seed = 7});
  for (int i = 0; i < 20; ++i) {
    const Sequence<char> seq = gen.Generate();
    EXPECT_GE(seq.size(), 50);
    EXPECT_LE(seq.size(), 150);
  }
}

TEST(ProteinGeneratorTest, CompositionRoughlyMatchesUniprot) {
  ProteinGenerator gen(ProteinGenOptions{.mean_length = 1000, .seed = 8});
  int64_t leucine = 0;
  int64_t tryptophan = 0;
  int64_t total = 0;
  for (int i = 0; i < 50; ++i) {
    const Sequence<char> seq = gen.Generate();
    for (int32_t j = 0; j < seq.size(); ++j) {
      leucine += (seq[j] == 'L');
      tryptophan += (seq[j] == 'W');
      ++total;
    }
  }
  // L ~9.7%, W ~1.1% in UniProt.
  EXPECT_NEAR(static_cast<double>(leucine) / total, 0.0965, 0.01);
  EXPECT_NEAR(static_cast<double>(tryptophan) / total, 0.011, 0.005);
}

TEST(ProteinGeneratorTest, DatabaseWithWindowsHasEnough) {
  ProteinGenerator gen(ProteinGenOptions{.mean_length = 100, .seed = 9});
  const auto db = gen.GenerateDatabaseWithWindows(500, 20);
  int64_t windows = 0;
  for (const auto& seq : db) windows += seq.size() / 20;
  EXPECT_GE(windows, 500);
}

TEST(SongGeneratorTest, PitchesStayInRange) {
  SongGenerator gen(SongGenOptions{.mean_length = 300, .seed = 10});
  const Sequence<double> seq = gen.Generate();
  for (int32_t i = 0; i < seq.size(); ++i) {
    EXPECT_GE(seq[i], 0.0);
    EXPECT_LE(seq[i], 11.0);
    EXPECT_DOUBLE_EQ(seq[i], std::floor(seq[i]));  // integral pitches
  }
}

TEST(SongGeneratorTest, DeterministicForSeed) {
  SongGenerator a(SongGenOptions{.seed = 11});
  SongGenerator b(SongGenOptions{.seed = 11});
  EXPECT_EQ(a.Generate(), b.Generate());
}

TEST(SongGeneratorTest, RepetitionProbabilityShows) {
  SongGenerator gen(SongGenOptions{
      .mean_length = 2000, .repeat_probability = 0.5, .seed = 12});
  const Sequence<double> seq = gen.GenerateWithLength(2000);
  int64_t repeats = 0;
  for (int32_t i = 1; i < seq.size(); ++i) repeats += (seq[i] == seq[i - 1]);
  // Repeats come from sustains plus zero-step moves; must be well above
  // the uniform-random baseline.
  EXPECT_GT(static_cast<double>(repeats) / seq.size(), 0.4);
}

TEST(TrajectoryGeneratorTest, StaysInRegion) {
  TrajectoryGenerator gen(TrajectoryGenOptions{.mean_length = 500,
                                               .seed = 13});
  const Sequence<Point2d> seq = gen.Generate();
  for (int32_t i = 0; i < seq.size(); ++i) {
    EXPECT_GE(seq[i].x, -1e-9);
    EXPECT_LE(seq[i].x, 100.0 + 1e-9);
    EXPECT_GE(seq[i].y, -1e-9);
    EXPECT_LE(seq[i].y, 60.0 + 1e-9);
  }
}

TEST(TrajectoryGeneratorTest, StepsAreSpeedBounded) {
  TrajectoryGenerator gen(TrajectoryGenOptions{.mean_length = 300,
                                               .speed = 2.0, .seed = 14});
  const Sequence<Point2d> seq = gen.GenerateWithLength(300);
  for (int32_t i = 1; i < seq.size(); ++i) {
    // Reflections can fold a step but never lengthen it beyond the speed.
    EXPECT_LE(PointDistance(seq[i], seq[i - 1]), 2.0 + 1e-9);
  }
}

TEST(TrajectoryGeneratorTest, DeterministicForSeed) {
  TrajectoryGenerator a(TrajectoryGenOptions{.seed = 15});
  TrajectoryGenerator b(TrajectoryGenOptions{.seed = 15});
  EXPECT_EQ(a.Generate(), b.Generate());
}

TEST(TrajectoryGeneratorTest, SmoothPathsNotIid) {
  // Consecutive-step distance must be far below the diameter; i.i.d.
  // points would average ~40% of it.
  TrajectoryGenerator gen(TrajectoryGenOptions{.seed = 16});
  const Sequence<Point2d> seq = gen.GenerateWithLength(400);
  double mean_step = 0.0;
  for (int32_t i = 1; i < seq.size(); ++i) {
    mean_step += PointDistance(seq[i], seq[i - 1]);
  }
  mean_step /= (seq.size() - 1);
  EXPECT_LT(mean_step, 3.0);
}

TEST(MotifPlanterTest, StringMutationRespectsRate) {
  MotifPlanter planter(17);
  std::vector<char> motif(1000, 'A');
  MotifOptions options;
  options.substitution_rate = 0.2;
  const auto mutated = planter.Mutate(std::span<const char>(motif), options);
  int changed = 0;
  for (size_t i = 0; i < mutated.size(); ++i) changed += (mutated[i] != 'A');
  // ~20% substitution, minus ~1/20 that re-draw 'A'.
  EXPECT_NEAR(changed / 1000.0, 0.19, 0.05);
}

TEST(MotifPlanterTest, ScalarMutationIsJitter) {
  MotifPlanter planter(18);
  std::vector<double> motif(500, 5.0);
  MotifOptions options;
  options.noise_sigma = 0.1;
  const auto mutated =
      planter.Mutate(std::span<const double>(motif), options);
  for (const double v : mutated) EXPECT_NEAR(v, 5.0, 1.0);
}

TEST(MotifPlanterTest, EmbedOverwritesAtPosition) {
  MotifPlanter planter(19);
  const Sequence<char> host = MakeStringSequence("AAAAAAAAAA");
  const std::vector<char> payload = {'C', 'G', 'T'};
  const Sequence<char> result =
      planter.Embed<char>(host, payload, 4);
  EXPECT_EQ(result, MakeStringSequence("AAAACGTAAA"));
}

TEST(MotifPlanterTest, DrawPositionInBounds) {
  MotifPlanter planter(20);
  for (int i = 0; i < 200; ++i) {
    const int32_t pos = planter.DrawPosition(100, 30);
    EXPECT_GE(pos, 0);
    EXPECT_LE(pos, 70);
  }
}

}  // namespace
}  // namespace subseq
