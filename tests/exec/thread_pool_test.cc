// Unit tests of the execution layer: ThreadPool, ParallelFor's partition
// contract, StatsSink exactness, and the CountingOracle under
// concurrency.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <mutex>
#include <vector>

#include "subseq/exec/exec_context.h"
#include "subseq/exec/parallel_for.h"
#include "subseq/exec/stats_sink.h"
#include "subseq/exec/thread_pool.h"
#include "subseq/metric/counting_oracle.h"
#include "testing/helpers.h"

namespace subseq {
namespace {

TEST(ExecContextTest, ResolvedThreadsHasFloorOfOne) {
  EXPECT_GE(ExecContext{}.ResolvedThreads(), 1);
  EXPECT_EQ(ExecContext{5}.ResolvedThreads(), 5);
  EXPECT_EQ(SequentialExec().ResolvedThreads(), 1);
}

TEST(ThreadPoolTest, DrainsQueuedTasksBeforeShutdown) {
  std::atomic<int32_t> executed{0};
  {
    ThreadPool pool(4);
    EXPECT_EQ(pool.num_threads(), 4);
    for (int i = 0; i < 100; ++i) {
      pool.Submit([&executed] {
        executed.fetch_add(1, std::memory_order_relaxed);
      });
    }
  }  // destructor joins after the queue is drained
  EXPECT_EQ(executed.load(), 100);
}

TEST(ThreadPoolTest, InWorkerDistinguishesPools) {
  ThreadPool pool(1);
  EXPECT_FALSE(pool.InWorker());
  std::atomic<bool> seen_inside{false};
  std::atomic<bool> done{false};
  pool.Submit([&] {
    seen_inside = pool.InWorker();
    done = true;
  });
  while (!done) {
  }
  EXPECT_TRUE(seen_inside.load());
}

TEST(ExecContextTest, HardwareConcurrencyResolvesOnceAndStays) {
  // The resolution is cached process-wide (the num_threads = 0 hoist):
  // repeated calls must agree and respect the floor of 1.
  const int32_t first = ResolveHardwareConcurrency();
  EXPECT_GE(first, 1);
  EXPECT_EQ(ResolveHardwareConcurrency(), first);
  EXPECT_EQ(ExecContext{}.ResolvedThreads(), first);
}

TEST(ThreadPoolTest, SubmitDetachedRunsCompletionAfterTask) {
  ThreadPool pool(2);
  std::atomic<int32_t> order{0};
  std::atomic<int32_t> task_pos{-1};
  std::atomic<int32_t> complete_pos{-1};
  std::atomic<bool> done{false};
  pool.SubmitDetached(
      [&] { task_pos = order.fetch_add(1); },
      [&] {
        complete_pos = order.fetch_add(1);
        done = true;
      });
  while (!done) {
  }
  EXPECT_EQ(task_pos.load(), 0);
  EXPECT_EQ(complete_pos.load(), 1);
}

TEST(ThreadPoolTest, SubmitDetachedAllowsEmptyCompletionAndDrains) {
  std::atomic<int32_t> executed{0};
  {
    ThreadPool pool(3);
    for (int i = 0; i < 200; ++i) {
      pool.SubmitDetached(
          [&executed] { executed.fetch_add(1, std::memory_order_relaxed); },
          std::function<void()>());
    }
  }  // destructor joins after the queue is drained
  EXPECT_EQ(executed.load(), 200);
}

TEST(ThreadPoolTest, SubmitDetachedCompletionRunsOnAWorker) {
  ThreadPool pool(1);
  std::atomic<bool> completion_in_worker{false};
  std::atomic<bool> done{false};
  pool.SubmitDetached([] {},
                      [&] {
                        completion_in_worker = pool.InWorker();
                        done = true;
                      });
  while (!done) {
  }
  EXPECT_TRUE(completion_in_worker.load());
}

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  for (const int32_t threads : {1, 2, 3, 8}) {
    for (const int64_t n : {0, 1, 7, 64, 1000}) {
      std::vector<std::atomic<int32_t>> visits(static_cast<size_t>(n));
      const int32_t chunks = ParallelFor(
          ExecContext{threads}, n, [&](int64_t begin, int64_t end, int32_t) {
            for (int64_t i = begin; i < end; ++i) {
              visits[static_cast<size_t>(i)].fetch_add(1);
            }
          });
      if (n == 0) {
        EXPECT_EQ(chunks, 0);
        continue;
      }
      EXPECT_GE(chunks, 1);
      EXPECT_LE(chunks, threads);
      for (int64_t i = 0; i < n; ++i) {
        EXPECT_EQ(visits[static_cast<size_t>(i)].load(), 1)
            << "index " << i << " at threads=" << threads << " n=" << n;
      }
    }
  }
}

TEST(ParallelForTest, ChunksAreContiguousAndAscending) {
  std::mutex mu;
  std::vector<std::pair<int64_t, int64_t>> ranges(8, {-1, -1});
  const int32_t chunks = ParallelFor(
      ExecContext{4}, 103, [&](int64_t begin, int64_t end, int32_t chunk) {
        std::lock_guard<std::mutex> lock(mu);
        ranges[static_cast<size_t>(chunk)] = {begin, end};
      });
  ASSERT_GE(chunks, 1);
  int64_t expected_begin = 0;
  for (int32_t c = 0; c < chunks; ++c) {
    EXPECT_EQ(ranges[static_cast<size_t>(c)].first, expected_begin);
    EXPECT_GT(ranges[static_cast<size_t>(c)].second,
              ranges[static_cast<size_t>(c)].first);
    expected_begin = ranges[static_cast<size_t>(c)].second;
  }
  EXPECT_EQ(expected_begin, 103);
}

TEST(ParallelForTest, GrainLimitsChunkCount) {
  // 10 iterations at grain 8 fit in ceil(10/8) = 2 chunks at most.
  const int32_t chunks = ParallelFor(
      ExecContext{8}, 10, [](int64_t, int64_t, int32_t) {}, /*grain=*/8);
  EXPECT_LE(chunks, 2);
}

TEST(ParallelForTest, NestedCallsRunInlineWithoutDeadlock) {
  std::atomic<int64_t> total{0};
  ParallelFor(ExecContext{4}, 16, [&](int64_t begin, int64_t end, int32_t) {
    for (int64_t i = begin; i < end; ++i) {
      // A nested section from a pool worker must degrade to inline
      // execution rather than waiting on its own pool.
      ParallelFor(ExecContext{4}, 32, [&](int64_t b, int64_t e, int32_t) {
        total.fetch_add(e - b, std::memory_order_relaxed);
      });
    }
  });
  EXPECT_EQ(total.load(), 16 * 32);
}

TEST(StatsSinkTest, TotalsAreExactUnderConcurrentAdds) {
  StatsSink sink;
  ParallelFor(ExecContext{8}, 10000, [&](int64_t begin, int64_t end,
                                         int32_t) {
    for (int64_t i = begin; i < end; ++i) {
      sink.AddDistanceComputations(1);
      sink.AddResults(2);
    }
  });
  EXPECT_EQ(sink.distance_computations(), 10000);
  EXPECT_EQ(sink.results(), 20000);
  sink.Reset();
  EXPECT_EQ(sink.distance_computations(), 0);
  EXPECT_EQ(sink.results(), 0);
}

TEST(CountingOracleTest, CountsExactlyUnderConcurrentCallers) {
  Rng rng(11);
  const testing::ScalarPointOracle base(
      testing::RandomSeries(&rng, 64, 0.0, 100.0));
  const CountingOracle counting(base);
  ParallelFor(ExecContext{8}, 5000, [&](int64_t begin, int64_t end,
                                        int32_t) {
    for (int64_t i = begin; i < end; ++i) {
      counting.Distance(static_cast<ObjectId>(i % 64),
                        static_cast<ObjectId>((i * 7) % 64));
    }
  });
  EXPECT_EQ(counting.count(), 5000);
}

TEST(CountingQueryFnTest, SinkOverloadIsThreadSafe) {
  Rng rng(13);
  const testing::ScalarPointOracle oracle(
      testing::RandomSeries(&rng, 32, 0.0, 100.0));
  StatsSink sink;
  const QueryDistanceFn counted =
      CountingQueryFn(oracle.QueryFrom(50.0), &sink);
  ParallelFor(ExecContext{8}, 4096, [&](int64_t begin, int64_t end,
                                        int32_t) {
    for (int64_t i = begin; i < end; ++i) {
      counted(static_cast<ObjectId>(i % 32));
    }
  });
  EXPECT_EQ(sink.distance_computations(), 4096);
}

}  // namespace
}  // namespace subseq
