// VerifyBudget: the exact, order-independent step-5 budget. The key
// invariant under test is schedule independence: exceeded() must end up
// true iff the total demand exceeds the limit, for any interleaving of
// concurrent charges — the property that makes parallel verification
// raise budget-exceeded exactly when the serial walk would.

#include "subseq/exec/verify_budget.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

namespace subseq {
namespace {

TEST(VerifyBudgetTest, ChargesWithinLimitSucceed) {
  VerifyBudget budget(10);
  EXPECT_TRUE(budget.Charge(4));
  EXPECT_TRUE(budget.Charge(6));  // exactly exhausts: still within limit
  EXPECT_FALSE(budget.exceeded());
  EXPECT_EQ(budget.limit(), 10);
}

TEST(VerifyBudgetTest, OverdrawFlipsExceededAndSticks) {
  VerifyBudget budget(10);
  EXPECT_TRUE(budget.Charge(10));
  EXPECT_FALSE(budget.exceeded());
  EXPECT_FALSE(budget.Charge(1));  // the (limit + 1)-th unit overdraws
  EXPECT_TRUE(budget.exceeded());
  EXPECT_FALSE(budget.Charge(0));  // sticky once exceeded
}

TEST(VerifyBudgetTest, ZeroCostChargeOnDrainedBudgetSucceeds) {
  // Mirrors the serial loops, which only decrement when a pair exists:
  // an empty region never trips the cap.
  VerifyBudget budget(3);
  EXPECT_TRUE(budget.Charge(3));
  EXPECT_TRUE(budget.Charge(0));
  EXPECT_FALSE(budget.exceeded());
}

TEST(VerifyBudgetTest, ZeroLimitRejectsAnyPositiveCharge) {
  VerifyBudget budget(0);
  EXPECT_TRUE(budget.Charge(0));
  EXPECT_FALSE(budget.Charge(1));
  EXPECT_TRUE(budget.exceeded());
}

TEST(VerifyBudgetTest, ConcurrentChargesTotallingLimitNeverExceed) {
  // 8 threads x 1000 unit charges == the limit exactly: no interleaving
  // may observe exhaustion.
  constexpr int kThreads = 8;
  constexpr int kPerThread = 1000;
  VerifyBudget budget(static_cast<int64_t>(kThreads) * kPerThread);
  std::vector<std::thread> threads;
  std::vector<int> failures(kThreads, 0);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&budget, &failures, t] {
      for (int i = 0; i < kPerThread; ++i) {
        if (!budget.Charge(1)) ++failures[t];
      }
    });
  }
  for (auto& th : threads) th.join();
  for (int t = 0; t < kThreads; ++t) EXPECT_EQ(failures[t], 0);
  EXPECT_FALSE(budget.exceeded());
}

TEST(VerifyBudgetTest, ConcurrentOverdrawAlwaysDetected) {
  // Total demand = limit + 1: exactly one unit must be refused no matter
  // how the charges interleave.
  constexpr int kThreads = 8;
  constexpr int kPerThread = 1000;
  VerifyBudget budget(static_cast<int64_t>(kThreads) * kPerThread - 1);
  std::vector<std::thread> threads;
  std::vector<int64_t> refused(kThreads, 0);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&budget, &refused, t] {
      for (int i = 0; i < kPerThread; ++i) {
        if (!budget.Charge(1)) ++refused[t];
      }
    });
  }
  for (auto& th : threads) th.join();
  int64_t total_refused = 0;
  for (const int64_t r : refused) total_refused += r;
  EXPECT_GE(total_refused, 1);
  EXPECT_TRUE(budget.exceeded());
}

TEST(VerifyBudgetDeathTest, NegativeLimitAborts) {
  // A negative budget is a programming error (MatcherOptions::Validate
  // rejects it at the API boundary); the budget itself CHECK-fails.
  EXPECT_DEATH(VerifyBudget(-1), "limit >= 0");
}

TEST(VerifyBudgetDeathTest, NegativeChargeAborts) {
  VerifyBudget budget(10);
  EXPECT_DEATH(budget.Charge(-1), "cost >= 0");
}

}  // namespace
}  // namespace subseq
