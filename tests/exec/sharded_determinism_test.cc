// Sharded vs unsharded determinism: a SubsequenceMatcher built with
// exec.num_shards = K must return element-wise identical matches — and
// identical pipeline stats (segments, hits, chains, verifications) — to
// the monolithic (unsharded) matcher, for every IndexKind, on PROTEINS
// and SONGS, at thread budgets 1 and 8 and shard counts 1, 4 and 7 (the
// catalog sizes are not divisible by either, exercising uneven shards).
//
// filter_computations is the one deliberate exception: K small indexes
// prune differently than one large one. LinearScan has no pruning, so
// there the computation counts must agree exactly too.

#include <gtest/gtest.h>

#include <span>
#include <string>
#include <vector>

#include "subseq/data/protein_gen.h"
#include "subseq/data/song_gen.h"
#include "subseq/distance/frechet.h"
#include "subseq/distance/levenshtein.h"
#include "subseq/frame/matcher.h"
#include "subseq/serve/coalescer.h"
#include "testing/helpers.h"

namespace subseq {
namespace {

constexpr IndexKind kAllKinds[] = {
    IndexKind::kReferenceNet, IndexKind::kCoverTree, IndexKind::kMvIndex,
    IndexKind::kVpTree, IndexKind::kLinearScan};

const char* KindName(IndexKind kind) {
  switch (kind) {
    case IndexKind::kReferenceNet: return "reference-net";
    case IndexKind::kCoverTree: return "cover-tree";
    case IndexKind::kMvIndex: return "mv-index";
    case IndexKind::kVpTree: return "vp-tree";
    case IndexKind::kLinearScan: return "linear-scan";
  }
  return "?";
}

template <typename T>
struct PipelineOutcome {
  std::vector<SubsequenceMatch> range;
  std::optional<SubsequenceMatch> longest;
  MatchQueryStats range_stats;
  MatchQueryStats longest_stats;
  std::string index_name;
};

template <typename T>
PipelineOutcome<T> RunPipeline(const SequenceDatabase<T>& db,
                               const SequenceDistance<T>& dist,
                               std::span<const T> query, IndexKind kind,
                               double epsilon, int32_t num_threads,
                               int32_t num_shards) {
  MatcherOptions options;
  options.lambda = 20;
  options.lambda0 = 2;
  options.index_kind = kind;
  options.exec.num_threads = num_threads;
  options.exec.num_shards = num_shards;
  auto matcher =
      std::move(SubsequenceMatcher<T>::Build(db, dist, options)).ValueOrDie();

  PipelineOutcome<T> out;
  out.index_name = std::string(matcher->index().name());
  auto range = matcher->RangeSearch(query, epsilon, &out.range_stats);
  EXPECT_TRUE(range.ok()) << range.status().ToString();
  if (range.ok()) out.range = std::move(range).ValueOrDie();
  auto longest = matcher->LongestMatch(query, epsilon, &out.longest_stats);
  EXPECT_TRUE(longest.ok()) << longest.status().ToString();
  if (longest.ok()) out.longest = std::move(longest).ValueOrDie();
  return out;
}

void ExpectPipelineStatsEqual(const MatchQueryStats& sharded,
                              const MatchQueryStats& baseline,
                              bool expect_same_filter_cost,
                              const char* where) {
  EXPECT_EQ(sharded.segments, baseline.segments) << where;
  EXPECT_EQ(sharded.hits, baseline.hits) << where;
  EXPECT_EQ(sharded.chains, baseline.chains) << where;
  EXPECT_EQ(sharded.verifications, baseline.verifications) << where;
  if (expect_same_filter_cost) {
    EXPECT_EQ(sharded.filter_computations, baseline.filter_computations)
        << where;
  }
}

template <typename T>
void ExpectShardedEqualsUnsharded(const SequenceDatabase<T>& db,
                                  const SequenceDistance<T>& dist,
                                  std::span<const T> query, double epsilon) {
  for (const IndexKind kind : kAllKinds) {
    SCOPED_TRACE(KindName(kind));
    const PipelineOutcome<T> baseline =
        RunPipeline(db, dist, query, kind, epsilon, /*num_threads=*/1,
                    /*num_shards=*/0);
    EXPECT_EQ(baseline.index_name.rfind("sharded", 0), std::string::npos);
    // Sanity: the workload exercises the pipeline.
    EXPECT_GT(baseline.range_stats.segments, 0);
    EXPECT_GT(baseline.range_stats.hits, 0);

    for (const int32_t shards : {1, 4, 7}) {
      for (const int32_t threads : {1, 8}) {
        SCOPED_TRACE("shards=" + std::to_string(shards) +
                     " threads=" + std::to_string(threads));
        const PipelineOutcome<T> sharded =
            RunPipeline(db, dist, query, kind, epsilon, threads, shards);
        if (shards > 1) {
          EXPECT_EQ(sharded.index_name.rfind("sharded[", 0), 0u)
              << sharded.index_name;
        }

        EXPECT_EQ(sharded.range, baseline.range);
        EXPECT_EQ(sharded.longest.has_value(), baseline.longest.has_value());
        if (sharded.longest.has_value() && baseline.longest.has_value()) {
          EXPECT_EQ(*sharded.longest, *baseline.longest);
          EXPECT_EQ(sharded.longest->distance, baseline.longest->distance);
        }
        const bool same_filter_cost =
            shards == 1 || kind == IndexKind::kLinearScan;
        ExpectPipelineStatsEqual(sharded.range_stats, baseline.range_stats,
                                 same_filter_cost, "RangeSearch");
        ExpectPipelineStatsEqual(sharded.longest_stats,
                                 baseline.longest_stats, same_filter_cost,
                                 "LongestMatch");
      }
    }
  }
}

template <typename T>
std::vector<T> QueryFromDatabase(const SequenceDatabase<T>& db,
                                 int32_t length) {
  const Sequence<T>& seq = db.at(0);
  EXPECT_GE(seq.size(), length);
  const auto view = seq.Subsequence(Interval{0, length});
  return std::vector<T>(view.begin(), view.end());
}

TEST(ShardedDeterminismTest, ProteinsAllIndexKinds) {
  ProteinGenerator gen(ProteinGenOptions{.mean_length = 80, .seed = 401});
  const auto db = gen.GenerateDatabaseWithWindows(60, 10);
  const LevenshteinDistance<char> dist;
  const std::vector<char> query = QueryFromDatabase(db, 26);
  ExpectShardedEqualsUnsharded<char>(db, dist, std::span<const char>(query),
                                     1.0);
}

TEST(ShardedDeterminismTest, SongsAllIndexKinds) {
  SongGenerator gen(SongGenOptions{.mean_length = 80, .seed = 402});
  const auto db = gen.GenerateDatabaseWithWindows(60, 10);
  const FrechetDistance1D dist;
  const std::vector<double> query = QueryFromDatabase(db, 26);
  ExpectShardedEqualsUnsharded<double>(
      db, dist, std::span<const double>(query), 0.5);
}

TEST(ShardedDeterminismTest, NearestMatchIdenticalOnShardedIndex) {
  // Type III re-runs the filter many times at varying epsilon; the
  // sharded filter must steer the epsilon search identically.
  ProteinGenerator gen(ProteinGenOptions{.mean_length = 80, .seed = 403});
  const auto db = gen.GenerateDatabaseWithWindows(40, 10);
  const LevenshteinDistance<char> dist;
  const std::vector<char> query = QueryFromDatabase(db, 26);

  auto run = [&](int32_t num_shards) {
    MatcherOptions options;
    options.lambda = 20;
    options.lambda0 = 2;
    options.index_kind = IndexKind::kReferenceNet;
    options.exec.num_threads = 8;
    options.exec.num_shards = num_shards;
    auto matcher =
        std::move(SubsequenceMatcher<char>::Build(db, dist, options))
            .ValueOrDie();
    MatchQueryStats stats;
    auto found = matcher->NearestMatch(std::span<const char>(query), 3.0,
                                       0.5, &stats);
    EXPECT_TRUE(found.ok()) << found.status().ToString();
    return std::move(found).ValueOrDie();
  };

  const auto baseline = run(0);
  const auto sharded = run(4);
  ASSERT_EQ(baseline.has_value(), sharded.has_value());
  if (baseline.has_value()) {
    EXPECT_EQ(*baseline, *sharded);
    EXPECT_EQ(baseline->distance, sharded->distance);
  }
}

TEST(ShardedDeterminismTest, CoalescerUnchangedOnShardedIndex) {
  // The serving coalescer issues one shared BatchRangeQuery for a whole
  // admission group; against a ShardedIndex that call fans across shards
  // under the hood. Each member's demuxed hits and billed stats must
  // still equal its stand-alone FilterSegments.
  ProteinGenerator gen(ProteinGenOptions{.mean_length = 80, .seed = 404});
  const auto db = gen.GenerateDatabaseWithWindows(40, 10);
  const LevenshteinDistance<char> dist;
  MatcherOptions options;
  options.lambda = 20;
  options.lambda0 = 2;
  options.index_kind = IndexKind::kCoverTree;
  options.exec.num_threads = 8;
  options.exec.num_shards = 4;
  auto matcher = std::move(SubsequenceMatcher<char>::Build(db, dist, options))
                     .ValueOrDie();

  std::vector<std::vector<char>> queries;
  for (int32_t i = 0; i < 3; ++i) {
    const auto view = db.at(i).Subsequence(Interval{0, 26});
    queries.emplace_back(view.begin(), view.end());
  }
  // Duplicate the first query: cross-query segment dedup must still bill
  // both owners their full stand-alone cost.
  queries.push_back(queries.front());
  std::vector<std::span<const char>> views(queries.begin(), queries.end());

  const CoalescedFilter shared = CoalescedFilterSegments<char>(
      *matcher, std::span<const std::span<const char>>(views), 1.0);
  ASSERT_EQ(shared.hits.size(), queries.size());
  for (size_t m = 0; m < queries.size(); ++m) {
    MatchQueryStats solo_stats;
    const std::vector<SegmentHit> solo =
        matcher->FilterSegments(views[m], 1.0, &solo_stats);
    ASSERT_EQ(shared.hits[m].size(), solo.size()) << "member " << m;
    for (size_t h = 0; h < solo.size(); ++h) {
      EXPECT_EQ(shared.hits[m][h].window, solo[h].window);
      EXPECT_EQ(shared.hits[m][h].query_segment, solo[h].query_segment);
      EXPECT_EQ(shared.hits[m][h].distance, solo[h].distance);
    }
    EXPECT_EQ(shared.stats[m].segments, solo_stats.segments);
    EXPECT_EQ(shared.stats[m].filter_computations,
              solo_stats.filter_computations);
    EXPECT_EQ(shared.stats[m].hits, solo_stats.hits);
  }
  EXPECT_GT(shared.segments_total, shared.segments_unique);
}

}  // namespace
}  // namespace subseq
