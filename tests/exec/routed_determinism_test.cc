// Routed vs monolithic determinism: a SubsequenceMatcher built with
// exec.routing_cells = K must return element-wise identical matches —
// and identical pipeline stats (segments, hits, chains, verifications)
// — to the monolithic matcher, for every IndexKind, on PROTEINS and
// SONGS, at thread budgets 1 and 8 and cell counts 1, 4 and 7.
//
// filter_computations is the deliberate exception: routing bills one
// pivot distance per cell per query and skips the members of far cells
// entirely, so the computation count is allowed to differ (shrinking is
// the point — the CI routing gates measure exactly that saving). The
// observable pipeline (matches, verify stats, budget-exceeded errors,
// serving-cache billing) must not move at all.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <span>
#include <string>
#include <vector>

#include "subseq/data/protein_gen.h"
#include "subseq/data/song_gen.h"
#include "subseq/distance/dtw.h"
#include "subseq/distance/frechet.h"
#include "subseq/distance/levenshtein.h"
#include "subseq/frame/matcher.h"
#include "subseq/serve/coalescer.h"
#include "testing/helpers.h"

namespace subseq {
namespace {

constexpr IndexKind kAllKinds[] = {
    IndexKind::kReferenceNet, IndexKind::kCoverTree, IndexKind::kMvIndex,
    IndexKind::kVpTree, IndexKind::kLinearScan};

const char* KindName(IndexKind kind) {
  switch (kind) {
    case IndexKind::kReferenceNet: return "reference-net";
    case IndexKind::kCoverTree: return "cover-tree";
    case IndexKind::kMvIndex: return "mv-index";
    case IndexKind::kVpTree: return "vp-tree";
    case IndexKind::kLinearScan: return "linear-scan";
  }
  return "?";
}

template <typename T>
struct PipelineOutcome {
  std::vector<SubsequenceMatch> range;
  Status range_status;
  std::optional<SubsequenceMatch> longest;
  MatchQueryStats range_stats;
  MatchQueryStats longest_stats;
  std::string index_name;
};

template <typename T>
PipelineOutcome<T> RunPipeline(const SequenceDatabase<T>& db,
                               const SequenceDistance<T>& dist,
                               std::span<const T> query, IndexKind kind,
                               double epsilon, int32_t num_threads,
                               int32_t routing_cells,
                               int64_t max_verifications = 5'000'000) {
  MatcherOptions options;
  options.lambda = 20;
  options.lambda0 = 2;
  options.index_kind = kind;
  options.max_verifications = max_verifications;
  options.exec.num_threads = num_threads;
  options.exec.routing_cells = routing_cells;
  auto matcher =
      std::move(SubsequenceMatcher<T>::Build(db, dist, options)).ValueOrDie();

  PipelineOutcome<T> out;
  out.index_name = std::string(matcher->index().name());
  auto range = matcher->RangeSearch(query, epsilon, &out.range_stats);
  out.range_status = range.status();
  if (range.ok()) out.range = std::move(range).ValueOrDie();
  auto longest = matcher->LongestMatch(query, epsilon, &out.longest_stats);
  EXPECT_TRUE(longest.ok()) << longest.status().ToString();
  if (longest.ok()) out.longest = std::move(longest).ValueOrDie();
  return out;
}

void ExpectPipelineStatsEqual(const MatchQueryStats& routed,
                              const MatchQueryStats& baseline,
                              bool expect_same_filter_cost,
                              const char* where) {
  EXPECT_EQ(routed.segments, baseline.segments) << where;
  EXPECT_EQ(routed.hits, baseline.hits) << where;
  EXPECT_EQ(routed.chains, baseline.chains) << where;
  EXPECT_EQ(routed.verifications, baseline.verifications) << where;
  if (expect_same_filter_cost) {
    EXPECT_EQ(routed.filter_computations, baseline.filter_computations)
        << where;
  }
}

template <typename T>
void ExpectRoutedEqualsMonolithic(const SequenceDatabase<T>& db,
                                  const SequenceDistance<T>& dist,
                                  std::span<const T> query, double epsilon) {
  for (const IndexKind kind : kAllKinds) {
    SCOPED_TRACE(KindName(kind));
    const PipelineOutcome<T> baseline =
        RunPipeline(db, dist, query, kind, epsilon, /*num_threads=*/1,
                    /*routing_cells=*/0);
    EXPECT_EQ(baseline.index_name.rfind("routed", 0), std::string::npos);
    // Sanity: the workload exercises the pipeline.
    EXPECT_GT(baseline.range_stats.segments, 0);
    EXPECT_GT(baseline.range_stats.hits, 0);

    for (const int32_t cells : {1, 4, 7}) {
      for (const int32_t threads : {1, 8}) {
        SCOPED_TRACE("cells=" + std::to_string(cells) +
                     " threads=" + std::to_string(threads));
        const PipelineOutcome<T> routed =
            RunPipeline(db, dist, query, kind, epsilon, threads, cells);
        if (cells > 1) {
          EXPECT_EQ(routed.index_name.rfind("routed[", 0), 0u)
              << routed.index_name;
        }

        EXPECT_EQ(routed.range, baseline.range);
        EXPECT_EQ(routed.longest.has_value(), baseline.longest.has_value());
        if (routed.longest.has_value() && baseline.longest.has_value()) {
          EXPECT_EQ(*routed.longest, *baseline.longest);
          EXPECT_EQ(routed.longest->distance, baseline.longest->distance);
        }
        const bool same_filter_cost = cells <= 1;
        ExpectPipelineStatsEqual(routed.range_stats, baseline.range_stats,
                                 same_filter_cost, "RangeSearch");
        ExpectPipelineStatsEqual(routed.longest_stats,
                                 baseline.longest_stats, same_filter_cost,
                                 "LongestMatch");
      }
    }
  }
}

template <typename T>
std::vector<T> QueryFromDatabase(const SequenceDatabase<T>& db,
                                 int32_t length) {
  const Sequence<T>& seq = db.at(0);
  EXPECT_GE(seq.size(), length);
  const auto view = seq.Subsequence(Interval{0, length});
  return std::vector<T>(view.begin(), view.end());
}

TEST(RoutedDeterminismTest, ProteinsAllIndexKinds) {
  ProteinGenerator gen(ProteinGenOptions{.mean_length = 80, .seed = 601});
  const auto db = gen.GenerateDatabaseWithWindows(60, 10);
  const LevenshteinDistance<char> dist;
  const std::vector<char> query = QueryFromDatabase(db, 26);
  ExpectRoutedEqualsMonolithic<char>(db, dist, std::span<const char>(query),
                                     1.0);
}

TEST(RoutedDeterminismTest, SongsAllIndexKinds) {
  SongGenerator gen(SongGenOptions{.mean_length = 80, .seed = 602});
  const auto db = gen.GenerateDatabaseWithWindows(60, 10);
  const FrechetDistance1D dist;
  const std::vector<double> query = QueryFromDatabase(db, 26);
  ExpectRoutedEqualsMonolithic<double>(
      db, dist, std::span<const double>(query), 0.5);
}

TEST(RoutedDeterminismTest, NearestMatchIdenticalOnRoutedIndex) {
  // Type III re-runs the filter many times at varying epsilon — each
  // pass routes independently (cell skipping depends on epsilon), yet
  // the epsilon search must be steered identically.
  ProteinGenerator gen(ProteinGenOptions{.mean_length = 80, .seed = 603});
  const auto db = gen.GenerateDatabaseWithWindows(40, 10);
  const LevenshteinDistance<char> dist;
  const std::vector<char> query = QueryFromDatabase(db, 26);

  auto run = [&](int32_t routing_cells) {
    MatcherOptions options;
    options.lambda = 20;
    options.lambda0 = 2;
    options.index_kind = IndexKind::kReferenceNet;
    options.exec.num_threads = 8;
    options.exec.routing_cells = routing_cells;
    auto matcher =
        std::move(SubsequenceMatcher<char>::Build(db, dist, options))
            .ValueOrDie();
    MatchQueryStats stats;
    auto found = matcher->NearestMatch(std::span<const char>(query), 3.0,
                                       0.5, &stats);
    EXPECT_TRUE(found.ok()) << found.status().ToString();
    return std::move(found).ValueOrDie();
  };

  const auto baseline = run(0);
  const auto routed = run(4);
  ASSERT_EQ(baseline.has_value(), routed.has_value());
  if (baseline.has_value()) {
    EXPECT_EQ(*baseline, *routed);
    EXPECT_EQ(baseline->distance, routed->distance);
  }
}

TEST(RoutedDeterminismTest, BudgetExceededIdenticalRoutedAndUnrouted) {
  // Routing changes which filter distances run, never which candidates
  // reach step 5: a budget trip must raise the identical status with
  // identical verify accounting whether the filter was routed or not.
  ProteinGenerator gen(ProteinGenOptions{.mean_length = 80, .seed = 604});
  const auto db = gen.GenerateDatabaseWithWindows(60, 10);
  const LevenshteinDistance<char> dist;
  const std::vector<char> query = QueryFromDatabase(db, 34);

  const PipelineOutcome<char> baseline = RunPipeline(
      db, dist, std::span<const char>(query), IndexKind::kReferenceNet, 1.0,
      /*num_threads=*/1, /*routing_cells=*/0, /*max_verifications=*/64);
  ASSERT_EQ(baseline.range_status.code(), StatusCode::kOutOfRange);
  EXPECT_EQ(baseline.range_stats.verifications, 64);

  for (const int32_t cells : {1, 4, 7}) {
    for (const int32_t threads : {1, 8}) {
      SCOPED_TRACE("cells=" + std::to_string(cells) +
                   " threads=" + std::to_string(threads));
      const PipelineOutcome<char> routed = RunPipeline(
          db, dist, std::span<const char>(query), IndexKind::kReferenceNet,
          1.0, threads, cells, /*max_verifications=*/64);
      EXPECT_EQ(routed.range_status.code(), baseline.range_status.code());
      EXPECT_EQ(routed.range_status.ToString(),
                baseline.range_status.ToString());
      EXPECT_EQ(routed.range_stats.verifications,
                baseline.range_stats.verifications);
      EXPECT_EQ(routed.range_stats.segments, baseline.range_stats.segments);
      EXPECT_EQ(routed.range_stats.hits, baseline.range_stats.hits);
    }
  }
}

TEST(RoutedDeterminismTest, CoalescerUnchangedOnRoutedIndex) {
  // The serving coalescer issues one shared BatchRangeQuery for a whole
  // admission group; against a RoutedIndex that call routes each member
  // query independently under the hood. Each member's demuxed hits and
  // billed stats must still equal its stand-alone FilterSegments — the
  // per-query split contract routing has to preserve.
  ProteinGenerator gen(ProteinGenOptions{.mean_length = 80, .seed = 605});
  const auto db = gen.GenerateDatabaseWithWindows(40, 10);
  const LevenshteinDistance<char> dist;
  MatcherOptions options;
  options.lambda = 20;
  options.lambda0 = 2;
  options.index_kind = IndexKind::kCoverTree;
  options.exec.num_threads = 8;
  options.exec.routing_cells = 4;
  auto matcher = std::move(SubsequenceMatcher<char>::Build(db, dist, options))
                     .ValueOrDie();

  std::vector<std::vector<char>> queries;
  for (int32_t i = 0; i < 3; ++i) {
    const auto view = db.at(i).Subsequence(Interval{0, 26});
    queries.emplace_back(view.begin(), view.end());
  }
  // Duplicate the first query: cross-query segment dedup must still bill
  // both owners their full stand-alone cost.
  queries.push_back(queries.front());
  std::vector<std::span<const char>> views(queries.begin(), queries.end());

  const CoalescedFilter shared = CoalescedFilterSegments<char>(
      *matcher, std::span<const std::span<const char>>(views), 1.0);
  ASSERT_EQ(shared.hits.size(), queries.size());
  for (size_t m = 0; m < queries.size(); ++m) {
    MatchQueryStats solo_stats;
    const std::vector<SegmentHit> solo =
        matcher->FilterSegments(views[m], 1.0, &solo_stats);
    ASSERT_EQ(shared.hits[m].size(), solo.size()) << "member " << m;
    for (size_t h = 0; h < solo.size(); ++h) {
      EXPECT_EQ(shared.hits[m][h].window, solo[h].window);
      EXPECT_EQ(shared.hits[m][h].query_segment, solo[h].query_segment);
      EXPECT_EQ(shared.hits[m][h].distance, solo[h].distance);
    }
    EXPECT_EQ(shared.stats[m].segments, solo_stats.segments);
    EXPECT_EQ(shared.stats[m].filter_computations,
              solo_stats.filter_computations);
    EXPECT_EQ(shared.stats[m].hits, solo_stats.hits);
  }
  EXPECT_GT(shared.segments_total, shared.segments_unique);
}

TEST(RoutedDeterminismTest, NonMetricDistanceRejectsRouting) {
  // Cell skipping is the triangle inequality; DTW does not satisfy it,
  // so routing must be refused outright (even over linear-scan cells,
  // where an unrouted build is fine).
  SongGenerator gen(SongGenOptions{.mean_length = 80, .seed = 606});
  const auto db = gen.GenerateDatabaseWithWindows(20, 10);
  const DtwDistance1D dist;
  MatcherOptions options;
  options.lambda = 20;
  options.lambda0 = 2;
  options.index_kind = IndexKind::kLinearScan;

  options.exec.routing_cells = 0;
  EXPECT_TRUE(SubsequenceMatcher<double>::Build(db, dist, options).ok());

  options.exec.routing_cells = 4;
  const auto routed = SubsequenceMatcher<double>::Build(db, dist, options);
  ASSERT_FALSE(routed.ok());
  EXPECT_EQ(routed.status().code(), StatusCode::kInvalidArgument);
}

TEST(RoutedDeterminismTest, ShardsAndCellsAreMutuallyExclusive) {
  ProteinGenerator gen(ProteinGenOptions{.mean_length = 80, .seed = 607});
  const auto db = gen.GenerateDatabaseWithWindows(20, 10);
  const LevenshteinDistance<char> dist;
  MatcherOptions options;
  options.lambda = 20;
  options.lambda0 = 2;
  options.index_kind = IndexKind::kLinearScan;
  options.exec.num_shards = 2;
  options.exec.routing_cells = 2;
  const auto built = SubsequenceMatcher<char>::Build(db, dist, options);
  ASSERT_FALSE(built.ok());
  EXPECT_EQ(built.status().code(), StatusCode::kInvalidArgument);
}

// ---------------------------------------------------------------------------
// Snapshots.

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

std::vector<char> ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<char>((std::istreambuf_iterator<char>(in)),
                           std::istreambuf_iterator<char>());
}

TEST(RoutedDeterminismTest, SnapshotRoundTripMatchesFreshRoutedBuild) {
  ProteinGenerator gen(ProteinGenOptions{.mean_length = 80, .seed = 608});
  const auto db = gen.GenerateDatabaseWithWindows(40, 10);
  const LevenshteinDistance<char> dist;
  const std::vector<char> query = QueryFromDatabase(db, 26);
  MatcherOptions options;
  options.lambda = 20;
  options.lambda0 = 2;
  options.index_kind = IndexKind::kReferenceNet;
  options.exec.routing_cells = 4;
  auto fresh = std::move(SubsequenceMatcher<char>::Build(db, dist, options))
                   .ValueOrDie();

  const std::string path = TempPath("routed_matcher.snap");
  ASSERT_TRUE(fresh->SaveIndex(path).ok());
  auto loaded = SubsequenceMatcher<char>::LoadIndex(db, dist, options, path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value()->index().name(), fresh->index().name());

  MatchQueryStats fresh_stats;
  MatchQueryStats loaded_stats;
  const auto expected =
      std::move(fresh->RangeSearch(std::span<const char>(query), 1.0,
                                   &fresh_stats))
          .ValueOrDie();
  const auto actual =
      std::move(loaded.value()->RangeSearch(std::span<const char>(query),
                                            1.0, &loaded_stats))
          .ValueOrDie();
  EXPECT_EQ(actual, expected);
  EXPECT_EQ(loaded_stats.segments, fresh_stats.segments);
  EXPECT_EQ(loaded_stats.filter_computations,
            fresh_stats.filter_computations);
  EXPECT_EQ(loaded_stats.hits, fresh_stats.hits);
  EXPECT_EQ(loaded_stats.verifications, fresh_stats.verifications);

  // Canonical encoding: the loaded matcher saves back byte-identically.
  const std::string resaved = TempPath("routed_matcher_resave.snap");
  ASSERT_TRUE(loaded.value()->SaveIndex(resaved).ok());
  EXPECT_EQ(ReadFileBytes(resaved), ReadFileBytes(path));

  // The stored cell count is part of the index identity: loading under a
  // different routing_cells must be refused.
  MatcherOptions other = options;
  other.exec.routing_cells = 7;
  EXPECT_FALSE(
      SubsequenceMatcher<char>::LoadIndex(db, dist, other, path).ok());
  std::remove(path.c_str());
  std::remove(resaved.c_str());
}

TEST(RoutedDeterminismTest, BuildToSnapshotMatchesInCoreRoutedBuild) {
  // The out-of-core builder computes the routing layout once (that pass
  // needs the whole catalog), then builds and serializes ONE CELL AT A
  // TIME. The file must be byte-identical to Build + SaveIndex — the
  // same out-of-core == in-core bar the sharded path meets.
  ProteinGenerator gen(ProteinGenOptions{.mean_length = 80, .seed = 609});
  const auto db = gen.GenerateDatabaseWithWindows(20, 10);
  const LevenshteinDistance<char> dist;
  MatcherOptions options;
  options.lambda = 20;
  options.lambda0 = 2;
  options.exec.routing_cells = 4;
  for (const IndexKind kind :
       {IndexKind::kReferenceNet, IndexKind::kCoverTree, IndexKind::kVpTree,
        IndexKind::kLinearScan}) {
    options.index_kind = kind;
    auto fresh =
        std::move(SubsequenceMatcher<char>::Build(db, dist, options))
            .ValueOrDie();
    const std::string in_core = TempPath("routed_incore.snap");
    ASSERT_TRUE(fresh->SaveIndex(in_core).ok());

    const std::string streamed = TempPath("routed_oocore.snap");
    const Status status = SubsequenceMatcher<char>::BuildToSnapshot(
        db, dist, options, streamed);
    ASSERT_TRUE(status.ok()) << status.ToString();
    EXPECT_EQ(ReadFileBytes(streamed), ReadFileBytes(in_core))
        << "kind " << static_cast<int>(kind);

    auto loaded =
        SubsequenceMatcher<char>::LoadIndex(db, dist, options, streamed);
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
    EXPECT_EQ(loaded.value()->index().name(), fresh->index().name());
    std::remove(in_core.c_str());
    std::remove(streamed.c_str());
  }
}

}  // namespace
}  // namespace subseq
