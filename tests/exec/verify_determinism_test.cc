// Step-5 verification determinism: parallel verification is pure
// wall-clock. For every IndexKind, on PROTEINS and SONGS, the matcher
// must return element-wise identical Type I / II / III matches AND
// pipeline stats (segments, filter_computations, hits, chains,
// verifications) across num_verify_threads 1 vs 8 and shard counts
// 1 vs 4 — num_verify_threads = 1 being the sequential reference
// algorithm the parallel paths are defined against. Budget exhaustion
// is part of the contract: a query that trips max_verifications must
// error with the identical status AND identical stats at every thread
// count (the budget is charged in full units before work, so exhaustion
// is schedule-independent).

#include <gtest/gtest.h>

#include <optional>
#include <span>
#include <string>
#include <vector>

#include "subseq/data/protein_gen.h"
#include "subseq/data/song_gen.h"
#include "subseq/distance/frechet.h"
#include "subseq/distance/levenshtein.h"
#include "subseq/frame/matcher.h"
#include "testing/helpers.h"

namespace subseq {
namespace {

constexpr IndexKind kAllKinds[] = {
    IndexKind::kReferenceNet, IndexKind::kCoverTree, IndexKind::kMvIndex,
    IndexKind::kVpTree, IndexKind::kLinearScan};

const char* KindName(IndexKind kind) {
  switch (kind) {
    case IndexKind::kReferenceNet: return "reference-net";
    case IndexKind::kCoverTree: return "cover-tree";
    case IndexKind::kMvIndex: return "mv-index";
    case IndexKind::kVpTree: return "vp-tree";
    case IndexKind::kLinearScan: return "linear-scan";
  }
  return "?";
}

struct RunConfig {
  int32_t num_threads = 1;  // 1 also disables Type III probe pipelining
  int32_t verify_threads = 1;
  int32_t shards = 0;
  int64_t max_verifications = 5'000'000;
};

template <typename T>
struct Outcome {
  std::vector<SubsequenceMatch> range;
  Status range_status;
  MatchQueryStats range_stats;

  std::optional<SubsequenceMatch> longest;
  Status longest_status;
  MatchQueryStats longest_stats;

  std::optional<SubsequenceMatch> nearest;
  Status nearest_status;
  MatchQueryStats nearest_stats;
};

template <typename T>
Outcome<T> RunPipeline(const SequenceDatabase<T>& db,
                       const SequenceDistance<T>& dist,
                       std::span<const T> query, IndexKind kind,
                       double epsilon, const RunConfig& config) {
  MatcherOptions options;
  options.lambda = 20;
  options.lambda0 = 2;
  options.index_kind = kind;
  options.max_verifications = config.max_verifications;
  options.exec.num_threads = config.num_threads;
  options.exec.num_verify_threads = config.verify_threads;
  options.exec.num_shards = config.shards;
  auto matcher =
      std::move(SubsequenceMatcher<T>::Build(db, dist, options)).ValueOrDie();

  Outcome<T> out;
  auto range = matcher->RangeSearch(query, epsilon, &out.range_stats);
  out.range_status = range.status();
  if (range.ok()) out.range = std::move(range).ValueOrDie();

  auto longest = matcher->LongestMatch(query, epsilon, &out.longest_stats);
  out.longest_status = longest.status();
  if (longest.ok()) out.longest = std::move(longest).ValueOrDie();

  auto nearest = matcher->NearestMatch(query, /*epsilon_max=*/epsilon * 2.0,
                                       /*epsilon_increment=*/epsilon / 2.0,
                                       &out.nearest_stats);
  out.nearest_status = nearest.status();
  if (nearest.ok()) out.nearest = std::move(nearest).ValueOrDie();
  return out;
}

void ExpectStatsEqual(const MatchQueryStats& got, const MatchQueryStats& want,
                      bool expect_same_filter_cost, const char* where) {
  EXPECT_EQ(got.segments, want.segments) << where;
  EXPECT_EQ(got.hits, want.hits) << where;
  EXPECT_EQ(got.chains, want.chains) << where;
  EXPECT_EQ(got.verifications, want.verifications) << where;
  if (expect_same_filter_cost) {
    EXPECT_EQ(got.filter_computations, want.filter_computations) << where;
  }
}

void ExpectStatusEqual(const Status& got, const Status& want,
                       const char* where) {
  EXPECT_EQ(got.code(), want.code()) << where;
  EXPECT_EQ(got.ToString(), want.ToString()) << where;
}

template <typename T>
void ExpectOutcomesEqual(const Outcome<T>& got, const Outcome<T>& want,
                         bool expect_same_filter_cost) {
  ExpectStatusEqual(got.range_status, want.range_status, "RangeSearch");
  EXPECT_EQ(got.range, want.range);
  for (size_t i = 0; i < std::min(got.range.size(), want.range.size()); ++i) {
    EXPECT_EQ(got.range[i].distance, want.range[i].distance) << i;
  }
  ExpectStatsEqual(got.range_stats, want.range_stats,
                   expect_same_filter_cost, "RangeSearch");

  ExpectStatusEqual(got.longest_status, want.longest_status, "LongestMatch");
  ASSERT_EQ(got.longest.has_value(), want.longest.has_value());
  if (got.longest.has_value()) {
    EXPECT_EQ(*got.longest, *want.longest);
    EXPECT_EQ(got.longest->distance, want.longest->distance);
  }
  ExpectStatsEqual(got.longest_stats, want.longest_stats,
                   expect_same_filter_cost, "LongestMatch");

  ExpectStatusEqual(got.nearest_status, want.nearest_status, "NearestMatch");
  ASSERT_EQ(got.nearest.has_value(), want.nearest.has_value());
  if (got.nearest.has_value()) {
    EXPECT_EQ(*got.nearest, *want.nearest);
    EXPECT_EQ(got.nearest->distance, want.nearest->distance);
  }
  ExpectStatsEqual(got.nearest_stats, want.nearest_stats,
                   expect_same_filter_cost, "NearestMatch");
}

template <typename T>
void ExpectVerifyDeterminism(const SequenceDatabase<T>& db,
                             const SequenceDistance<T>& dist,
                             std::span<const T> query, double epsilon) {
  for (const IndexKind kind : kAllKinds) {
    SCOPED_TRACE(KindName(kind));
    // The baseline is fully sequential: one filter thread (which also
    // disables Type III probe pipelining), one verify thread, one index.
    const Outcome<T> baseline = RunPipeline(
        db, dist, query, kind, epsilon,
        RunConfig{/*num_threads=*/1, /*verify_threads=*/1, /*shards=*/0});
    EXPECT_TRUE(baseline.range_status.ok())
        << baseline.range_status.ToString();
    // Sanity: the workload exercises verification, not just the filter.
    EXPECT_GT(baseline.range_stats.hits, 0);
    EXPECT_GT(baseline.range_stats.verifications, 0);

    for (const int32_t num_threads : {1, 8}) {
      for (const int32_t shards : {1, 4}) {
        for (const int32_t verify_threads : {1, 8}) {
          SCOPED_TRACE("num_threads=" + std::to_string(num_threads) +
                       " shards=" + std::to_string(shards) +
                       " verify_threads=" + std::to_string(verify_threads));
          const Outcome<T> got = RunPipeline(
              db, dist, query, kind, epsilon,
              RunConfig{num_threads, verify_threads, shards});
          // K small indexes prune differently than one large one; only
          // the unsharded runs (and LinearScan, which never prunes) must
          // agree on filter_computations. Everything else is
          // element-wise exact.
          const bool same_filter_cost =
              shards <= 1 || kind == IndexKind::kLinearScan;
          ExpectOutcomesEqual(got, baseline, same_filter_cost);
        }
      }
    }
  }
}

template <typename T>
std::vector<T> QueryFromDatabase(const SequenceDatabase<T>& db,
                                 int32_t length) {
  const Sequence<T>& seq = db.at(0);
  EXPECT_GE(seq.size(), length);
  const auto view = seq.Subsequence(Interval{0, length});
  return std::vector<T>(view.begin(), view.end());
}

TEST(VerifyDeterminismTest, ProteinsAllIndexKinds) {
  ProteinGenerator gen(ProteinGenOptions{.mean_length = 80, .seed = 501});
  const auto db = gen.GenerateDatabaseWithWindows(60, 10);
  const LevenshteinDistance<char> dist;
  const std::vector<char> query = QueryFromDatabase(db, 34);
  ExpectVerifyDeterminism<char>(db, dist, std::span<const char>(query), 1.0);
}

TEST(VerifyDeterminismTest, SongsAllIndexKinds) {
  SongGenerator gen(SongGenOptions{.mean_length = 80, .seed = 502});
  const auto db = gen.GenerateDatabaseWithWindows(60, 10);
  const FrechetDistance1D dist;
  const std::vector<double> query = QueryFromDatabase(db, 34);
  ExpectVerifyDeterminism<double>(db, dist, std::span<const double>(query),
                                  0.5);
}

TEST(VerifyDeterminismTest, BudgetExceededErrorsIdenticallyAtAllSettings) {
  // A Type I budget trip must be raised at every thread/shard setting
  // with the identical status AND identical stats: the serial walk burns
  // exactly max_verifications computations before raising, and the
  // parallel path must report the same accounting.
  ProteinGenerator gen(ProteinGenOptions{.mean_length = 80, .seed = 503});
  const auto db = gen.GenerateDatabaseWithWindows(60, 10);
  const LevenshteinDistance<char> dist;
  const std::vector<char> query = QueryFromDatabase(db, 34);

  const Outcome<char> baseline = RunPipeline(
      db, dist, std::span<const char>(query), IndexKind::kReferenceNet, 1.0,
      RunConfig{/*num_threads=*/1, /*verify_threads=*/1, /*shards=*/0,
                /*max_verifications=*/64});
  ASSERT_EQ(baseline.range_status.code(), StatusCode::kOutOfRange);
  EXPECT_EQ(baseline.range_stats.verifications, 64);

  for (const int32_t num_threads : {1, 8}) {
    for (const int32_t shards : {1, 4}) {
      for (const int32_t verify_threads : {1, 8}) {
        SCOPED_TRACE("num_threads=" + std::to_string(num_threads) +
                     " shards=" + std::to_string(shards) +
                     " verify_threads=" + std::to_string(verify_threads));
        const Outcome<char> got = RunPipeline(
            db, dist, std::span<const char>(query), IndexKind::kReferenceNet,
            1.0,
            RunConfig{num_threads, verify_threads, shards,
                      /*max_verifications=*/64});
        ExpectOutcomesEqual(got, baseline, shards <= 1);
      }
    }
  }
}

TEST(VerifyDeterminismTest, TypeIIBudgetExceededIdenticalAcrossThreads) {
  // LongestMatch trips its budget mid-walk (the count depends on the
  // search's early exits, not a closed form); the speculative parallel
  // path must replay the identical walk and raise identically. A random
  // query at a generous epsilon gives the chain search many hits but no
  // early verified pair, so a small budget reliably trips.
  ProteinGenerator gen(ProteinGenOptions{.mean_length = 80, .seed = 504});
  const auto db = gen.GenerateDatabaseWithWindows(60, 10);
  const LevenshteinDistance<char> dist;
  Rng rng(77);
  const std::vector<char> query =
      testing::RandomString(&rng, 34, "ACDEFGHIKLMNPQRSTVWY");

  const Outcome<char> baseline = RunPipeline(
      db, dist, std::span<const char>(query), IndexKind::kLinearScan, 8.0,
      RunConfig{/*num_threads=*/1, /*verify_threads=*/1, /*shards=*/0,
                /*max_verifications=*/16});
  ASSERT_EQ(baseline.longest_status.code(), StatusCode::kOutOfRange);

  for (const int32_t num_threads : {1, 8}) {
    for (const int32_t verify_threads : {1, 8}) {
      SCOPED_TRACE("num_threads=" + std::to_string(num_threads) +
                   " verify_threads=" + std::to_string(verify_threads));
      const Outcome<char> got = RunPipeline(
          db, dist, std::span<const char>(query), IndexKind::kLinearScan, 8.0,
          RunConfig{num_threads, verify_threads, /*shards=*/0,
                    /*max_verifications=*/16});
      ExpectOutcomesEqual(got, baseline, /*expect_same_filter_cost=*/true);
    }
  }
}

}  // namespace
}  // namespace subseq
