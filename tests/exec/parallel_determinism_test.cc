// Parallel determinism: every query type over every IndexKind must
// return element-wise identical results — and identical stats totals —
// at num_threads = 1 and num_threads = 8, on all three paper domains
// (PROTEINS / SONGS / TRAJ). This is the exec layer's core contract:
// threads buy wall-clock time, never answers.

#include <gtest/gtest.h>

#include <span>
#include <vector>

#include "subseq/data/protein_gen.h"
#include "subseq/data/song_gen.h"
#include "subseq/data/trajectory_gen.h"
#include "subseq/distance/erp.h"
#include "subseq/distance/frechet.h"
#include "subseq/distance/levenshtein.h"
#include "subseq/exec/stats_sink.h"
#include "subseq/frame/matcher.h"
#include "subseq/metric/counting_oracle.h"
#include "subseq/metric/linear_scan.h"
#include "testing/helpers.h"

namespace subseq {
namespace {

constexpr IndexKind kAllKinds[] = {
    IndexKind::kReferenceNet, IndexKind::kCoverTree, IndexKind::kMvIndex,
    IndexKind::kVpTree, IndexKind::kLinearScan};

const char* KindName(IndexKind kind) {
  switch (kind) {
    case IndexKind::kReferenceNet: return "reference-net";
    case IndexKind::kCoverTree: return "cover-tree";
    case IndexKind::kMvIndex: return "mv-index";
    case IndexKind::kVpTree: return "vp-tree";
    case IndexKind::kLinearScan: return "linear-scan";
  }
  return "?";
}

void ExpectStatsEqual(const MatchQueryStats& a, const MatchQueryStats& b,
                      const char* where) {
  EXPECT_EQ(a.segments, b.segments) << where;
  EXPECT_EQ(a.filter_computations, b.filter_computations) << where;
  EXPECT_EQ(a.hits, b.hits) << where;
  EXPECT_EQ(a.chains, b.chains) << where;
  EXPECT_EQ(a.verifications, b.verifications) << where;
}

/// Runs all three query types at the given thread budget.
template <typename T>
struct QueryOutcome {
  std::vector<SubsequenceMatch> range;
  std::optional<SubsequenceMatch> longest;
  std::optional<SubsequenceMatch> nearest;
  MatchQueryStats range_stats;
  MatchQueryStats longest_stats;
  MatchQueryStats nearest_stats;
  int64_t build_computations = 0;
};

template <typename T>
QueryOutcome<T> RunAllQueries(const SequenceDatabase<T>& db,
                              const SequenceDistance<T>& dist,
                              std::span<const T> query, IndexKind kind,
                              double epsilon, int32_t num_threads) {
  MatcherOptions options;
  options.lambda = 20;
  options.lambda0 = 2;
  options.index_kind = kind;
  options.exec.num_threads = num_threads;
  auto matcher =
      std::move(SubsequenceMatcher<T>::Build(db, dist, options)).ValueOrDie();

  QueryOutcome<T> out;
  out.build_computations =
      matcher->index().build_stats().distance_computations;
  auto range = matcher->RangeSearch(query, epsilon, &out.range_stats);
  EXPECT_TRUE(range.ok()) << range.status().ToString();
  if (range.ok()) out.range = std::move(range).ValueOrDie();
  auto longest = matcher->LongestMatch(query, epsilon, &out.longest_stats);
  EXPECT_TRUE(longest.ok()) << longest.status().ToString();
  if (longest.ok()) out.longest = std::move(longest).ValueOrDie();
  auto nearest = matcher->NearestMatch(query, 2.0 * epsilon + 1.0, 0.5,
                                       &out.nearest_stats);
  EXPECT_TRUE(nearest.ok()) << nearest.status().ToString();
  if (nearest.ok()) out.nearest = std::move(nearest).ValueOrDie();
  return out;
}

template <typename T>
void ExpectDeterministicAcrossThreads(const SequenceDatabase<T>& db,
                                      const SequenceDistance<T>& dist,
                                      std::span<const T> query,
                                      double epsilon) {
  for (const IndexKind kind : kAllKinds) {
    SCOPED_TRACE(KindName(kind));
    const QueryOutcome<T> sequential =
        RunAllQueries(db, dist, query, kind, epsilon, /*num_threads=*/1);
    const QueryOutcome<T> parallel =
        RunAllQueries(db, dist, query, kind, epsilon, /*num_threads=*/8);

    // The index build must perform the same computations either way.
    EXPECT_EQ(sequential.build_computations, parallel.build_computations);

    EXPECT_EQ(sequential.range, parallel.range);
    EXPECT_EQ(sequential.longest.has_value(), parallel.longest.has_value());
    if (sequential.longest.has_value() && parallel.longest.has_value()) {
      EXPECT_EQ(*sequential.longest, *parallel.longest);
      EXPECT_EQ(sequential.longest->distance, parallel.longest->distance);
    }
    EXPECT_EQ(sequential.nearest.has_value(), parallel.nearest.has_value());
    if (sequential.nearest.has_value() && parallel.nearest.has_value()) {
      EXPECT_EQ(*sequential.nearest, *parallel.nearest);
      EXPECT_EQ(sequential.nearest->distance, parallel.nearest->distance);
    }
    ExpectStatsEqual(sequential.range_stats, parallel.range_stats,
                     "RangeSearch");
    ExpectStatsEqual(sequential.longest_stats, parallel.longest_stats,
                     "LongestMatch");
    ExpectStatsEqual(sequential.nearest_stats, parallel.nearest_stats,
                     "NearestMatch");
    // Sanity: the workload actually exercised the pipeline.
    EXPECT_GT(sequential.range_stats.segments, 0);
    EXPECT_GT(sequential.range_stats.hits, 0);
  }
}

/// A query sharing a region with the database: the first sequence's
/// prefix, so every epsilon >= 0 yields hits and verified matches.
template <typename T>
std::vector<T> QueryFromDatabase(const SequenceDatabase<T>& db,
                                 int32_t length) {
  const Sequence<T>& seq = db.at(0);
  EXPECT_GE(seq.size(), length);
  const auto view = seq.Subsequence(Interval{0, length});
  return std::vector<T>(view.begin(), view.end());
}

TEST(ParallelDeterminismTest, ProteinsAllIndexKinds) {
  ProteinGenerator gen(ProteinGenOptions{.mean_length = 80, .seed = 301});
  const auto db = gen.GenerateDatabaseWithWindows(60, 10);
  const LevenshteinDistance<char> dist;
  const std::vector<char> query = QueryFromDatabase(db, 26);
  ExpectDeterministicAcrossThreads<char>(db, dist,
                                         std::span<const char>(query), 1.0);
}

TEST(ParallelDeterminismTest, SongsAllIndexKinds) {
  SongGenerator gen(SongGenOptions{.mean_length = 80, .seed = 302});
  const auto db = gen.GenerateDatabaseWithWindows(60, 10);
  const FrechetDistance1D dist;
  const std::vector<double> query = QueryFromDatabase(db, 26);
  ExpectDeterministicAcrossThreads<double>(
      db, dist, std::span<const double>(query), 0.5);
}

TEST(ParallelDeterminismTest, TrajectoriesAllIndexKinds) {
  TrajectoryGenerator gen(TrajectoryGenOptions{.mean_length = 80,
                                               .seed = 303});
  const auto db = gen.GenerateDatabaseWithWindows(60, 10);
  const ErpDistance2D dist;
  const std::vector<Point2d> query = QueryFromDatabase(db, 26);
  ExpectDeterministicAcrossThreads<Point2d>(
      db, dist, std::span<const Point2d>(query), 2.0);
}

TEST(ParallelDeterminismTest, BatchRangeQueryMatchesPerQueryResults) {
  // Index-level contract on a scalar metric space: BatchRangeQuery at 8
  // threads == per-query RangeQuery, and the sink's totals equal the sum
  // of per-query stats, for every backend.
  Rng rng(305);
  const testing::ScalarPointOracle oracle(
      testing::RandomSeries(&rng, 300, 0.0, 100.0));
  ReferenceNet net = ReferenceNet::BuildAll(oracle);
  CoverTree tree = CoverTree::BuildAll(oracle);
  const MvIndex mv(oracle);
  const VpTree vp(oracle);
  const LinearScan scan(oracle.size());
  const RangeIndex* indexes[] = {&net, &tree, &mv, &vp, &scan};

  std::vector<QueryDistanceFn> queries;
  std::vector<double> centers;
  for (int i = 0; i < 23; ++i) {
    centers.push_back(rng.NextDouble(0.0, 100.0));
  }
  for (const double c : centers) queries.push_back(oracle.QueryFrom(c));

  for (const RangeIndex* index : indexes) {
    SCOPED_TRACE(std::string(index->name()));
    int64_t expected_computations = 0;
    int64_t expected_results = 0;
    std::vector<std::vector<ObjectId>> expected;
    for (const auto& q : queries) {
      QueryStats qs;
      expected.push_back(index->RangeQuery(q, 5.0, &qs));
      expected_computations += qs.distance_computations;
      expected_results += qs.result_count;
    }
    StatsSink sink;
    const auto batched = index->BatchRangeQuery(
        queries, 5.0, ExecContext{8}, &sink);
    EXPECT_EQ(batched, expected);
    EXPECT_EQ(sink.distance_computations(), expected_computations);
    EXPECT_EQ(sink.results(), expected_results);
  }
}

}  // namespace
}  // namespace subseq
