// Serving: answer many concurrent clients through one MatchServer.
//
//   build/examples/serving
//
// The quickstart example calls the matcher library directly — one query
// at a time. This walkthrough runs the serving path: start a MatchServer
// (which windows + indexes the database once), submit a burst of queries
// from several client threads, and let the server coalesce their segment
// filters into shared index calls. Results are element-wise identical to
// the direct library calls — the server trades nothing but wall-clock.

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "subseq/core/sequence.h"
#include "subseq/distance/levenshtein.h"
#include "subseq/serve/match_server.h"

int main() {
  using namespace subseq;

  // 1. The database and distance, exactly as in the library quickstart.
  SequenceDatabase<char> db;
  db.Add(MakeStringSequence(
      "MKTAYIAKQRQISFVKSHFSRQLEERLGLIEVQAPILSRVGDGTQDNLSGAEKAVQ", "seq-0"));
  db.Add(MakeStringSequence(
      "GGGGGGGGACGTACGTTGCAACGTACGTGGGGGGGGGGGGGGGGGGGGGGGG", "seq-1"));
  db.Add(MakeStringSequence(
      "TTTTTTTTTTTTTTTTTTTTTTTTTTTTTTTTTTTTTTTTTTTTTTTT", "seq-2"));
  const LevenshteinDistance<char> distance;

  // 2. Server options: the framework parameters plus which index
  //    backends to prebuild. Every configured kind gets its own index
  //    over the shared window partition; requests pick one per call.
  MatchServerOptions options;
  options.matcher.lambda = 16;
  options.matcher.lambda0 = 2;
  options.index_kinds = {IndexKind::kReferenceNet, IndexKind::kLinearScan};

  // 3. Start the server. This runs the offline steps (window + index
  //    build) and launches the admission/coalescing loop.
  auto server_result = MatchServer<char>::Start(db, distance, options);
  if (!server_result.ok()) {
    std::fprintf(stderr, "start failed: %s\n",
                 server_result.status().ToString().c_str());
    return 1;
  }
  auto server = std::move(server_result).ValueOrDie();

  // 4. Concurrent clients. Each submits one request and blocks only on
  //    its own future; the server groups same-epsilon filters from
  //    different clients into shared index calls.
  const std::vector<std::string> client_queries = {
      "AAAAACGTACGTTGCAACGTACGAAAAA",  // ~ seq-1, one substitution
      "CCCCACGTACGTTGCAACGTACGTCCCC",  // ~ seq-1, different flanks
      "QRQISFVKSHFSRQLEERLGLIEV",      // ~ seq-0 exactly
      "TTTTTTTTTTTTTTTTTTTTTTTT",      // ~ seq-2 exactly
  };
  std::vector<Future<MatchResult>> futures(client_queries.size());
  std::vector<std::thread> clients;
  for (size_t c = 0; c < client_queries.size(); ++c) {
    clients.emplace_back([&, c] {
      MatchRequest<char> request;
      request.type = MatchQueryType::kLongestMatch;
      request.query.assign(client_queries[c].begin(),
                           client_queries[c].end());
      request.epsilon = 2.0;  // same epsilon => coalescable across clients
      futures[c] = server->Submit(std::move(request));
    });
  }
  for (std::thread& t : clients) t.join();

  // 5. Collect. Get() blocks until that request's step 5 finished on the
  //    pool; per-query stats are exact despite the shared filter.
  for (size_t c = 0; c < futures.size(); ++c) {
    MatchResult result = futures[c].Get();
    if (!result.status.ok()) {
      std::fprintf(stderr, "query %zu failed: %s\n", c,
                   result.status.ToString().c_str());
      return 1;
    }
    if (result.best.has_value()) {
      std::printf(
          "client %zu: query[%d, %d) ~ %s[%d, %d), distance %.0f "
          "(%lld filter computations, %lld verifications)\n",
          c, result.best->query.begin, result.best->query.end,
          db.at(result.best->seq).label().c_str(), result.best->db.begin,
          result.best->db.end, result.best->distance,
          static_cast<long long>(result.stats.filter_computations),
          static_cast<long long>(result.stats.verifications));
    } else {
      std::printf("client %zu: no similar pair at epsilon 2\n", c);
    }
  }

  // 6. Serving counters: how much cross-query sharing actually happened,
  //    in-round (coalescing) and across rounds (the segment cache).
  const ServeStats stats = server->stats();
  std::printf(
      "server: %lld queries in %lld admission batches, %lld shared filter "
      "calls, %lld queries coalesced with a peer\n",
      static_cast<long long>(stats.queries_admitted),
      static_cast<long long>(stats.admission_batches),
      static_cast<long long>(stats.filter_calls),
      static_cast<long long>(stats.coalesced_queries));
  std::printf(
      "cache: %lld hits / %lld misses, %lld distance computations answered "
      "from cache (billed %lld, executed %lld)\n",
      static_cast<long long>(stats.cache_hits),
      static_cast<long long>(stats.cache_misses),
      static_cast<long long>(stats.cache_shared_computations),
      static_cast<long long>(stats.billed_filter_computations),
      static_cast<long long>(stats.filter_computations));
  return 0;
}
