// Quickstart: index a handful of strings and find the best matching
// subsequence pair for a query under the Levenshtein distance.
//
//   build/examples/quickstart
//
// Walks through the whole public API surface in ~60 lines: build a
// database, build a SubsequenceMatcher (which windows the database and
// indexes the windows in a reference net), then run the three query
// types.

#include <cstdio>
#include <string>

#include "subseq/core/sequence.h"
#include "subseq/distance/levenshtein.h"
#include "subseq/frame/matcher.h"

int main() {
  using namespace subseq;

  // 1. A database of sequences. Strings here; time series (double) and
  //    trajectories (Point2d) work identically.
  SequenceDatabase<char> db;
  db.Add(MakeStringSequence(
      "MKTAYIAKQRQISFVKSHFSRQLEERLGLIEVQAPILSRVGDGTQDNLSGAEKAVQ", "seq-0"));
  db.Add(MakeStringSequence(
      "GGGGGGGGACGTACGTTGCAACGTACGTGGGGGGGGGGGGGGGGGGGGGGGG", "seq-1"));
  db.Add(MakeStringSequence(
      "TTTTTTTTTTTTTTTTTTTTTTTTTTTTTTTTTTTTTTTTTTTTTTTT", "seq-2"));

  // 2. A consistent + metric distance (Definition 1 / Section 3.3).
  const LevenshteinDistance<char> distance;

  // 3. The framework. lambda = minimum match length; lambda0 = maximum
  //    length difference between the two matched subsequences.
  MatcherOptions options;
  options.lambda = 16;
  options.lambda0 = 2;
  options.index_kind = IndexKind::kReferenceNet;
  // Index build and the segment filter run on all cores by default
  // (options.exec.num_threads = 0); results are identical at any
  // setting, so this is purely a wall-clock knob.
  options.exec.num_threads = 0;
  auto matcher_result = SubsequenceMatcher<char>::Build(db, distance, options);
  if (!matcher_result.ok()) {
    std::fprintf(stderr, "build failed: %s\n",
                 matcher_result.status().ToString().c_str());
    return 1;
  }
  auto matcher = std::move(matcher_result).ValueOrDie();
  std::printf("indexed %d windows of length %d\n",
              matcher->catalog().num_windows(), matcher->window_length());

  // The query shares a 24-letter region with seq-1 (one substitution).
  const Sequence<char> query =
      MakeStringSequence("AAAAACGTACGTTGCAACGTACGAAAAA");

  // Type II: the longest similar subsequence pair within distance 2.
  auto longest = matcher->LongestMatch(query.view(), 2.0);
  if (longest.ok() && longest.value().has_value()) {
    const SubsequenceMatch& m = *longest.value();
    const std::string q(query.elements().begin() + m.query.begin,
                        query.elements().begin() + m.query.end);
    const auto sx = db.at(m.seq).Subsequence(m.db);
    const std::string x(sx.begin(), sx.end());
    std::printf("Type II : query[%d, %d) ~ %s[%d, %d), distance %.0f\n",
                m.query.begin, m.query.end, db.at(m.seq).label().c_str(),
                m.db.begin, m.db.end, m.distance);
    std::printf("          SQ = %s\n          SX = %s\n", q.c_str(),
                x.c_str());
  }

  // Type III: the closest pair of length >= lambda, searching distances
  // up to 6 in unit steps.
  auto nearest = matcher->NearestMatch(query.view(), 6.0, 1.0);
  if (nearest.ok() && nearest.value().has_value()) {
    std::printf("Type III: best distance %.0f at %s[%d, %d)\n",
                nearest.value()->distance,
                db.at(nearest.value()->seq).label().c_str(),
                nearest.value()->db.begin, nearest.value()->db.end);
  }

  // Type I: every similar pair (can be numerous — the consistency
  // property makes sub-matches of a match match too).
  auto all = matcher->RangeSearch(query.view(), 1.0);
  if (all.ok()) {
    std::printf("Type I  : %zu similar pairs at epsilon 1\n",
                all.value().size());
  }
  return 0;
}
