// Melody search in pitch sequences (the SONGS scenario): find where a
// hummed fragment best matches a song database under the discrete Frechet
// distance, comparing the work done by different index backends.
//
//   build/examples/music_search [num_songs]

#include <cstdio>
#include <cstdlib>

#include "subseq/data/motif.h"
#include "subseq/data/song_gen.h"
#include "subseq/distance/frechet.h"
#include "subseq/frame/matcher.h"

int main(int argc, char** argv) {
  using namespace subseq;
  const int32_t num_songs = argc > 1 ? std::atoi(argv[1]) : 80;

  SongGenerator gen(SongGenOptions{.mean_length = 240, .seed = 4242});
  SequenceDatabase<double> db;

  // The "hummed" query: a fragment lifted from one song with jitter —
  // pitch errors of a semitone or two, as a human would produce.
  SongGenerator query_gen(SongGenOptions{.mean_length = 80, .seed = 11});
  Sequence<double> query = query_gen.GenerateWithLength(60);
  SeqId source_song = kInvalidId;
  Interval source_at;
  {
    MotifPlanter planter(12);
    for (int32_t i = 0; i < num_songs; ++i) {
      Sequence<double> song = gen.Generate();
      if (i == num_songs / 2) {
        // Splice 40 notes of this song into the middle of the query.
        source_song = static_cast<SeqId>(db.size());
        source_at = Interval{60, 100};
        std::vector<double> fragment(
            song.elements().begin() + 60, song.elements().begin() + 100);
        for (double& v : fragment) {
          if ((planter.DrawPosition(10, 1) % 5) == 0) {
            v = std::min(11.0, std::max(0.0, v + 1.0));
          }
        }
        query = planter.Embed<double>(
            query, std::span<const double>(fragment), 10);
      }
      db.Add(std::move(song));
    }
  }
  std::printf("database: %d songs (%lld notes); query of %d notes carries "
              "a fragment of song %d\n",
              db.size(), static_cast<long long>(db.TotalLength()),
              query.size(), source_song);

  const FrechetDistance1D dfd;
  for (const IndexKind kind :
       {IndexKind::kReferenceNet, IndexKind::kCoverTree,
        IndexKind::kLinearScan}) {
    MatcherOptions options;
    options.lambda = 30;
    options.lambda0 = 2;
    options.index_kind = kind;
    auto matcher =
        std::move(SubsequenceMatcher<double>::Build(db, dfd, options))
            .ValueOrDie();
    MatchQueryStats stats;
    auto nearest = matcher->NearestMatch(query.view(), 3.0, 0.5, &stats);
    if (!nearest.ok()) {
      std::fprintf(stderr, "query failed: %s\n",
                   nearest.status().ToString().c_str());
      return 1;
    }
    std::printf("%-14s filter computations %8lld | ",
                matcher->index().name().data(),
                static_cast<long long>(stats.filter_computations));
    if (nearest.value().has_value()) {
      const SubsequenceMatch& m = *nearest.value();
      std::printf("best: song %d [%d, %d) at DFD %.2f%s\n", m.seq,
                  m.db.begin, m.db.end, m.distance,
                  (m.seq == source_song && m.db.Overlaps(source_at))
                      ? "  <- the source fragment"
                      : "");
    } else {
      std::printf("no match within DFD 3\n");
    }
  }
  return 0;
}
