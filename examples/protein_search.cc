// Protein motif search: generate a UniProt-like database, hide a mutated
// motif in a few sequences, and use the framework to find it — then print
// the optimal edit-script alignment of the best hit.
//
//   build/examples/protein_search [num_sequences]

#include <cstdio>
#include <cstdlib>
#include <string>

#include "subseq/data/motif.h"
#include "subseq/data/protein_gen.h"
#include "subseq/distance/levenshtein.h"
#include "subseq/frame/matcher.h"

namespace {

void PrintAlignment(const subseq::Alignment& alignment,
                    std::span<const char> a, std::span<const char> b) {
  std::string top;
  std::string mid;
  std::string bottom;
  for (const subseq::Coupling& c : alignment.couplings) {
    switch (c.op) {
      case subseq::AlignOp::kMatch:
        top += a[static_cast<size_t>(c.i)];
        bottom += b[static_cast<size_t>(c.j)];
        mid += (c.cost == 0.0) ? '|' : '*';
        break;
      case subseq::AlignOp::kGapA:
        top += a[static_cast<size_t>(c.i)];
        bottom += '-';
        mid += ' ';
        break;
      case subseq::AlignOp::kGapB:
        top += '-';
        bottom += b[static_cast<size_t>(c.j)];
        mid += ' ';
        break;
    }
  }
  std::printf("  %s\n  %s\n  %s\n", top.c_str(), mid.c_str(),
              bottom.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  using namespace subseq;
  const int32_t num_sequences = argc > 1 ? std::atoi(argv[1]) : 60;

  // Database of protein-like sequences with family redundancy.
  ProteinGenOptions gen_options;
  gen_options.mean_length = 300;
  gen_options.seed = 2024;
  ProteinGenerator gen(gen_options);

  // The query: a random protein whose middle 40 residues are the motif.
  ProteinGenerator query_gen(
      ProteinGenOptions{.mean_length = 120, .seed = 77});
  const Sequence<char> query = query_gen.GenerateWithLength(100);
  const auto motif = query.Subsequence(Interval{30, 70});

  // Plant mutated copies of the motif into every 20th sequence.
  MotifPlanter planter(99);
  MotifOptions motif_options;
  motif_options.substitution_rate = 0.05;
  SequenceDatabase<char> db;
  int32_t plants = 0;
  for (int32_t i = 0; i < num_sequences; ++i) {
    Sequence<char> host = gen.Generate();
    if (i % 20 == 0) {
      const auto payload = planter.Mutate(motif, motif_options);
      const int32_t pos = planter.DrawPosition(
          host.size(), static_cast<int32_t>(payload.size()));
      host = planter.Embed<char>(host, payload, pos);
      ++plants;
    }
    db.Add(std::move(host));
  }
  std::printf("database: %d sequences, %lld residues, %d planted motifs\n",
              db.size(), static_cast<long long>(db.TotalLength()), plants);

  const LevenshteinDistance<char> distance;
  MatcherOptions options;
  options.lambda = 40;  // match at least the motif length
  options.lambda0 = 3;
  auto matcher =
      std::move(SubsequenceMatcher<char>::Build(db, distance, options))
          .ValueOrDie();
  std::printf("index: %d windows in a reference net (%lld build distance "
              "computations)\n",
              matcher->catalog().num_windows(),
              static_cast<long long>(
                  matcher->index().build_stats().distance_computations));

  MatchQueryStats stats;
  auto result = matcher->LongestMatch(query.view(), 4.0, &stats);
  if (!result.ok()) {
    std::fprintf(stderr, "query failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  std::printf("filter: %lld segments, %lld index computations, %lld hits, "
              "%lld chains, %lld verifications\n",
              static_cast<long long>(stats.segments),
              static_cast<long long>(stats.filter_computations),
              static_cast<long long>(stats.hits),
              static_cast<long long>(stats.chains),
              static_cast<long long>(stats.verifications));
  if (!result.value().has_value()) {
    std::printf("no similar subsequence within distance 4\n");
    return 0;
  }
  const SubsequenceMatch& m = *result.value();
  std::printf("best match: query[%d, %d) ~ sequence %d [%d, %d), edit "
              "distance %.0f\n",
              m.query.begin, m.query.end, m.seq, m.db.begin, m.db.end,
              m.distance);

  // Show the alignment (| = identity, * = substitution, - = gap).
  const LevenshteinDistance<char> lev;
  const Alignment alignment = lev.ComputeWithPath(
      query.Subsequence(m.query), db.at(m.seq).Subsequence(m.db));
  PrintAlignment(alignment, query.Subsequence(m.query),
                 db.at(m.seq).Subsequence(m.db));
  return 0;
}
