// Trajectory sub-track search (the TRAJ scenario): find which stored
// vehicle track contains a segment similar to an observed partial track,
// under ERP. Also demonstrates dataset persistence (save + reload).
//
//   build/examples/trajectory_search [num_tracks]

#include <cstdio>
#include <cstdlib>
#include <string>

#include "subseq/data/io.h"
#include "subseq/data/motif.h"
#include "subseq/data/trajectory_gen.h"
#include "subseq/distance/erp.h"
#include "subseq/frame/matcher.h"

int main(int argc, char** argv) {
  using namespace subseq;
  const int32_t num_tracks = argc > 1 ? std::atoi(argv[1]) : 50;

  TrajectoryGenerator gen(TrajectoryGenOptions{.mean_length = 200,
                                               .seed = 31337});
  SequenceDatabase<Point2d> db;
  for (int32_t i = 0; i < num_tracks; ++i) db.Add(gen.Generate());

  // Persist and reload (examples double as IO smoke tests).
  const std::string path = "/tmp/subseq_traj_example.txt";
  if (const Status s = WriteTrajectoryDatabase(db, path); !s.ok()) {
    std::fprintf(stderr, "save failed: %s\n", s.ToString().c_str());
    return 1;
  }
  auto reloaded = ReadTrajectoryDatabase(path);
  if (!reloaded.ok()) {
    std::fprintf(stderr, "load failed: %s\n",
                 reloaded.status().ToString().c_str());
    return 1;
  }
  const SequenceDatabase<Point2d>& tracks = reloaded.value();
  std::printf("database: %d tracks (%lld samples), persisted to %s\n",
              tracks.size(), static_cast<long long>(tracks.TotalLength()),
              path.c_str());

  // The observation: 50 samples of track 17 with GPS-like noise.
  const SeqId observed_track = 17 % tracks.size();
  const Interval observed_at{40, 90};
  MotifPlanter planter(55);
  MotifOptions noise;
  noise.noise_sigma = 0.15;
  const auto noisy = planter.Mutate(
      tracks.at(observed_track).Subsequence(observed_at), noise);
  const Sequence<Point2d> query((std::vector<Point2d>(noisy)));

  const ErpDistance2D erp;
  MatcherOptions options;
  options.lambda = 30;
  options.lambda0 = 2;
  auto matcher =
      std::move(SubsequenceMatcher<Point2d>::Build(tracks, erp, options))
          .ValueOrDie();
  std::printf("index: %d windows, %lld build computations\n",
              matcher->catalog().num_windows(),
              static_cast<long long>(
                  matcher->index().build_stats().distance_computations));

  MatchQueryStats stats;
  auto longest = matcher->LongestMatch(query.view(), 8.0, &stats);
  if (!longest.ok()) {
    std::fprintf(stderr, "query failed: %s\n",
                 longest.status().ToString().c_str());
    return 1;
  }
  std::printf("filter: %lld computations, %lld hits, %lld verifications\n",
              static_cast<long long>(stats.filter_computations),
              static_cast<long long>(stats.hits),
              static_cast<long long>(stats.verifications));
  if (!longest.value().has_value()) {
    std::printf("no sub-track within ERP 8\n");
    return 0;
  }
  const SubsequenceMatch& m = *longest.value();
  std::printf("best sub-track: query[%d, %d) ~ track %d [%d, %d), "
              "ERP %.2f%s\n",
              m.query.begin, m.query.end, m.seq, m.db.begin, m.db.end,
              m.distance,
              (m.seq == observed_track && m.db.Overlaps(observed_at))
                  ? "  <- the observed track"
                  : "");
  return 0;
}
